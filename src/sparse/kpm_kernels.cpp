#include "sparse/kpm_kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <type_traits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__SSE2__)
#include <emmintrin.h>
#define KPM_HAVE_NT_STORES 1
#endif

#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/schedule.hpp"

namespace kpm::sparse {
namespace {

#ifndef _OPENMP
inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
#endif

std::atomic<KernelVariant> g_variant{KernelVariant::auto_dispatch};

// TileConfig split into per-field atomics (read on every block-kernel call;
// same "don't flip mid-flight" caveat as the variant override).
std::atomic<int> g_tile_width{0};
std::atomic<global_index> g_band_rows{0};
std::atomic<bool> g_nt_stores{false};

/// Sub-width used by the automatic tiling policy: a 16-lane tile keeps the
/// split accumulators in 4 ZMM (8 YMM) registers, and BENCH_kernels.json
/// shows the single-pass fixed bodies peaking at R = 16 before spilling.
constexpr int kAutoTileWidth = 16;

// The kernels accept rectangular matrices with ncols >= nrows: a
// distributed-memory partition owns `nrows` rows but reads a halo-extended
// input of `ncols` entries (src/runtime).  Only the first nrows entries of
// v/w enter the on-the-fly dot products — exactly the locally owned rows.
void check_single(const global_index nrows, const global_index ncols,
                  std::span<const complex_t> v, std::span<complex_t> w) {
  require(ncols >= nrows, "aug_spmv: ncols must be >= nrows");
  require(v.size() == static_cast<std::size_t>(ncols) &&
              w.size() >= static_cast<std::size_t>(nrows),
          "aug_spmv: vector sizes must match the matrix shape");
}

bool spans_overlap(std::span<const complex_t> a, std::span<const complex_t> b) {
  if (a.empty() || b.empty()) return false;
  // std::less gives a total pointer order even across unrelated objects.
  const std::less<const complex_t*> lt;
  const auto* a_end = a.data() + a.size();
  const auto* b_end = b.data() + b.size();
  return lt(a.data(), b_end) && lt(b.data(), a_end);
}

void check_block(const global_index nrows, const global_index ncols,
                 const blas::BlockVector& v, const blas::BlockVector& w,
                 std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  require(ncols >= nrows, "aug_spmmv: ncols must be >= nrows");
  require(v.rows() == ncols && w.rows() >= nrows && v.width() == w.width(),
          "aug_spmmv: shape mismatch");
  require(v.layout() == blas::Layout::row_major &&
              w.layout() == blas::Layout::row_major,
          "aug_spmmv: row-major block vectors required");
  require(dot_vv.empty() || dot_vv.size() == static_cast<std::size_t>(v.width()),
          "aug_spmmv: dot_vv must be empty or match the block width");
  require(dot_wv.empty() || dot_wv.size() == static_cast<std::size_t>(v.width()),
          "aug_spmmv: dot_wv must be empty or match the block width");
  require(dot_vv.empty() == dot_wv.empty(),
          "aug_spmmv: pass both dot outputs or neither");
  require(!spans_overlap(dot_vv, v.span()) && !spans_overlap(dot_vv, w.span()) &&
              !spans_overlap(dot_wv, v.span()) &&
              !spans_overlap(dot_wv, w.span()),
          "aug_spmmv: dot spans must not alias the v/w storage");
}

// ---------------------------------------------------------------------------
// Split-complex views.  complex_t storage is interleaved (re, im) doubles and
// [complex.numbers.general]/4 guarantees array-oriented access through a
// reinterpreted double pointer; computing on the parts directly lets the
// compiler emit FMA arithmetic instead of library complex-multiply calls.
inline const double* re_im(const complex_t* p) noexcept {
  return reinterpret_cast<const double*>(p);
}
inline double* re_im(complex_t* p) noexcept {
  return reinterpret_cast<double*>(p);
}

/// AugScalars hoisted into plain doubles for the split loops.
struct ScalarsRI {
  double ar, ai, br, bi, gr, gi;
  explicit ScalarsRI(const AugScalars& s) noexcept
      : ar(s.alpha.real()),
        ai(s.alpha.imag()),
        br(s.beta.real()),
        bi(s.beta.imag()),
        gr(s.gamma.real()),
        gi(s.gamma.imag()) {}
};

// Lane-count tags of the dispatch layer: FixedWidth<N> makes every lane loop
// a compile-time-constant trip count (fully unrolled / vectorized with
// stack-resident accumulators), RuntimeWidth is the generic fallback.  A tag
// now describes the lanes of ONE column-tile pass, not necessarily the full
// block width.
template <int N>
struct FixedWidth {
  static constexpr bool fixed = true;
  static constexpr int compile_width = N;
  constexpr int get() const noexcept { return N; }
};
struct RuntimeWidth {
  static constexpr bool fixed = false;
  static constexpr int compile_width = 1;  // storage bound only; unused
  int w;
  int get() const noexcept { return w; }
};

// ---------------------------------------------------------------------------
// Execution plan of one block sweep: the column-tile passes each row is run
// through, the per-thread row-band height, and the store flavor.  An untiled
// sweep is the single pass {width, 0}.
struct TilePass {
  int lanes;
  int offset;  // first lane (complex elements into the row)
};

struct SweepPlan {
  std::array<TilePass, 2> inline_passes{};  // storage for the common cases
  std::vector<TilePass> overflow;           // widths needing > 2 passes
  int num_passes = 0;
  global_index band_rows = 0;  // 0 = whole per-thread range
  bool nt = false;

  void add(int lanes, int offset) {
    if (num_passes < static_cast<int>(inline_passes.size())) {
      inline_passes[static_cast<std::size_t>(num_passes)] = {lanes, offset};
    } else {
      if (overflow.empty()) {
        overflow.assign(inline_passes.begin(), inline_passes.end());
      }
      overflow.push_back({lanes, offset});
    }
    ++num_passes;
  }
  [[nodiscard]] const TilePass* passes() const noexcept {
    return overflow.empty() ? inline_passes.data() : overflow.data();
  }
  [[nodiscard]] int size() const noexcept { return num_passes; }
};

/// Resolves the automatic policy: the sub-width `width` will be tiled into,
/// or a value >= width when the sweep should run as one pass.  `auto_tile`
/// is the register-budget sub-width of the automatic policy — block formats
/// keep b accumulator rows live per lane, so they pass a smaller budget.
int resolve_tile_width(int width, KernelVariant variant,
                       int auto_tile = kAutoTileWidth) {
  if (variant == KernelVariant::force_generic) return width;
  const int cfg = g_tile_width.load(std::memory_order_relaxed);
  if (cfg < 0) return width;  // tiling disabled
  if (cfg > 0) return cfg;
  // Auto policy: tile only above the register budget.
  return width > auto_tile ? auto_tile : width;
}

/// Automatic column-tile sub-width for a b x b block kernel.  The ib-outer
/// pass keeps a single accumulator row live — the same register footprint
/// as the scalar kernels — so the block formats share kAutoTileWidth.
constexpr int block_auto_tile(int) { return kAutoTileWidth; }

SweepPlan make_plan(int width, int auto_tile = kAutoTileWidth) {
  const KernelVariant variant = g_variant.load(std::memory_order_relaxed);
  SweepPlan plan;
  if (variant != KernelVariant::force_generic) {
    plan.band_rows = g_band_rows.load(std::memory_order_relaxed);
    plan.nt = g_nt_stores.load(std::memory_order_relaxed);
  }
  const int tile = resolve_tile_width(width, variant, auto_tile);
  if (tile < width) {
    int off = 0;
    for (; off + tile <= width; off += tile) plan.add(tile, off);
    if (off < width) plan.add(width - off, off);
  } else {
    plan.add(width, 0);
  }
  return plan;
}

/// Routes one pass's lane count onto a FixedWidth<N> instantiation, or the
/// RuntimeWidth body for untabulated counts / the forced-generic variant.
template <class F>
void dispatch_lanes(int lanes, KernelVariant variant, F&& f) {
  if (variant != KernelVariant::force_generic) {
    switch (lanes) {
      case 1: f(FixedWidth<1>{}); return;
      case 2: f(FixedWidth<2>{}); return;
      case 4: f(FixedWidth<4>{}); return;
      case 8: f(FixedWidth<8>{}); return;
      case 16: f(FixedWidth<16>{}); return;
      case 32: f(FixedWidth<32>{}); return;
      case 64: f(FixedWidth<64>{}); return;
      default: break;
    }
  }
  f(RuntimeWidth{lanes});
}

// ---------------------------------------------------------------------------
// Lock-free deterministic dot reduction.  Each thread accumulates its dot
// partials locally and publishes them once into a cache-line-padded slot of
// this buffer; after a barrier a single thread combines the slots in
// ascending thread order.  With the explicit static row split the
// row->thread assignment is fixed, so the result is bitwise reproducible at
// any fixed thread count — replacing the unordered `omp critical` merges.
class DotPartials {
 public:
  explicit DotPartials(int width)
      : width_(width),
        slot_((3 * static_cast<std::size_t>(width) + 7) / 8 * 8),
        buf_(slot_ * static_cast<std::size_t>(omp_get_max_threads()), 0.0) {}

  /// Publishes one thread's partials (called inside the parallel region).
  void store(const double* vv, const double* wv_re, const double* wv_im) {
    double* slot = buf_.data() + slot_ * omp_get_thread_num();
    for (int r = 0; r < width_; ++r) {
      slot[r] = vv[r];
      slot[width_ + r] = wv_re[r];
      slot[2 * width_ + r] = wv_im[r];
    }
  }

  /// Adds all published partials into the caller's spans, thread 0 first.
  /// Call from one thread only, after a barrier.
  void reduce_into(complex_t* dot_vv, complex_t* dot_wv) const {
    const int nthreads = omp_get_num_threads();
    for (int t = 0; t < nthreads; ++t) {
      const double* slot = buf_.data() + slot_ * t;
      for (int r = 0; r < width_; ++r) {
        dot_vv[r] += complex_t{slot[r], 0.0};
        dot_wv[r] += complex_t{slot[width_ + r], slot[2 * width_ + r]};
      }
    }
  }

 private:
  int width_;
  std::size_t slot_;  // doubles per thread, padded to a 64-byte multiple
  aligned_vector<double> buf_;
};

// ---------------------------------------------------------------------------
// Shared row epilogue: w_i = alpha*acc + beta*v_i + gamma*w_i on split
// parts, plus the on-the-fly |v_i|^2 and conj(w_new)*v_i partials.  `vi`,
// `wi` and the dot partials are already offset to the pass's first lane.
// The NT branch streams each (re, im) pair past the cache; both branches
// evaluate the identical expression tree, so the stored bits agree.
template <class W, bool WithDots, bool NT>
inline void finish_row(W wt, const ScalarsRI& s,
                       const double* __restrict__ acc_re,
                       const double* __restrict__ acc_im,
                       const double* __restrict__ vi, double* __restrict__ wi,
                       double* __restrict__ lvv, double* __restrict__ lwr,
                       double* __restrict__ lwi) {
  const int lanes = wt.get();
#ifdef KPM_HAVE_NT_STORES
  if constexpr (NT) {
    for (int r = 0; r < lanes; ++r) {
      const double vre = vi[2 * r], vim = vi[2 * r + 1];
      const double wre0 = wi[2 * r], wim0 = wi[2 * r + 1];
      const double sre = acc_re[r], sim = acc_im[r];
      const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                         s.gr * wre0 - s.gi * wim0;
      const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                         s.gr * wim0 + s.gi * wre0;
      // Rows are 16-byte aligned (complex elements in a 64-byte aligned
      // allocation), the _mm_stream_pd contract.
      _mm_stream_pd(wi + 2 * r, _mm_set_pd(wim, wre));
      if constexpr (WithDots) {
        lvv[r] += vre * vre + vim * vim;
        lwr[r] += wre * vre + wim * vim;  // Re(conj(w_new) * v)
        lwi[r] += wre * vim - wim * vre;  // Im(conj(w_new) * v)
      }
    }
    return;
  }
#endif
#pragma omp simd
  for (int r = 0; r < lanes; ++r) {
    const double vre = vi[2 * r], vim = vi[2 * r + 1];
    const double wre0 = wi[2 * r], wim0 = wi[2 * r + 1];
    const double sre = acc_re[r], sim = acc_im[r];
    const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                       s.gr * wre0 - s.gi * wim0;
    const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                       s.gr * wim0 + s.gi * wre0;
    wi[2 * r] = wre;
    wi[2 * r + 1] = wim;
    if constexpr (WithDots) {
      lvv[r] += vre * vre + vim * vim;
      lwr[r] += wre * vre + wim * vim;  // Re(conj(w_new) * v)
      lwi[r] += wre * vim - wim * vre;  // Im(conj(w_new) * v)
    }
  }
}

/// Pass-local accumulator storage: registers (via stack arrays) for fixed
/// lane counts, caller-provided heap scratch for runtime lane counts.
template <class W>
struct PassAccumulators {
  std::array<double, W::fixed ? 2 * W::compile_width : 1> stack{};
  double* re;
  double* im;
  PassAccumulators(W wt, double* heap) noexcept {
    if constexpr (W::fixed) {
      re = stack.data();
      im = stack.data() + W::compile_width;
      (void)heap;
    } else {
      re = heap;
      im = heap + wt.get();
    }
  }
};

// One column-tile pass of the CRS row loop over [row_begin, row_end): `wt`
// lanes starting at complex-column `off` of a block vector whose full row
// stride is `stride` complex elements.  Rows are this thread's only — no
// worksharing construct, the caller did the static split.
template <class W, bool WithDots, bool NT>
void crs_pass(const CrsMatrix& a, const ScalarsRI& s,
              const double* __restrict__ vd, double* __restrict__ wd,
              int stride, int off, global_index row_begin, global_index row_end,
              W wt, double* __restrict__ lvv, double* __restrict__ lwr,
              double* __restrict__ lwi, double* acc_scratch) {
  const int lanes = wt.get();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  PassAccumulators<W> acc(wt, acc_scratch);
  double* __restrict__ acc_re = acc.re;
  double* __restrict__ acc_im = acc.im;
  for (global_index i = row_begin; i < row_end; ++i) {
#pragma omp simd
    for (int r = 0; r < lanes; ++r) {
      acc_re[r] = 0.0;
      acc_im[r] = 0.0;
    }
    for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double mre = vald[2 * k], mim = vald[2 * k + 1];
      const double* __restrict__ vr =
          vd + 2 * (static_cast<std::size_t>(col[k]) * stride + off);
#pragma omp simd
      for (int r = 0; r < lanes; ++r) {
        acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
        acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
      }
    }
    const std::size_t base = static_cast<std::size_t>(i) * stride + off;
    finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * base,
                                wd + 2 * base, lvv, lwr, lwi);
  }
}

// One column-tile pass of the SELL chunk loop over [chunk_begin, chunk_end).
template <class W, bool WithDots, bool NT>
void sell_pass(const SellMatrix& a, const ScalarsRI& s,
               const double* __restrict__ vd, double* __restrict__ wd,
               int stride, int off, global_index chunk_begin,
               global_index chunk_end, W wt, double* __restrict__ lvv,
               double* __restrict__ lwr, double* __restrict__ lwi,
               double* acc_scratch) {
  const int lanes = wt.get();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  PassAccumulators<W> acc(wt, acc_scratch);
  double* __restrict__ acc_re = acc.re;
  double* __restrict__ acc_im = acc.im;
  for (global_index c = chunk_begin; c < chunk_end; ++c) {
    const global_index base = cptr[c];
    const int rows_in_chunk =
        static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
    for (int lane = 0; lane < rows_in_chunk; ++lane) {
      const global_index i = c * chunk + lane;
#pragma omp simd
      for (int r = 0; r < lanes; ++r) {
        acc_re[r] = 0.0;
        acc_im[r] = 0.0;
      }
      for (local_index j = 0; j < clen[c]; ++j) {
        const global_index moff =
            base + static_cast<global_index>(j) * chunk + lane;
        const double mre = vald[2 * moff], mim = vald[2 * moff + 1];
        const double* __restrict__ vr =
            vd + 2 * (static_cast<std::size_t>(col[moff]) * stride + off);
#pragma omp simd
        for (int r = 0; r < lanes; ++r) {
          acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
          acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
        }
      }
      const std::size_t wbase = static_cast<std::size_t>(i) * stride + off;
      finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * wbase,
                                  wd + 2 * wbase, lvv, lwr, lwi);
    }
  }
}

// ---------------------------------------------------------------------------
// Block-format passes (DESIGN.md §5f).  A b x b block kernel amortizes one
// block-column index over b^2 stored values and keeps a block row's values,
// indices and v block-rows L1-resident while its b output rows are produced;
// VT is the stored value part type (double or float — accumulation is
// always double), D16 selects the 16-bit delta column decode.

template <class VT, class Matrix>
const VT* block_values(const Matrix& a) noexcept {
  if constexpr (std::is_same_v<VT, double>) {
    return re_im(a.values().data());
  } else {
    // [complex.numbers.general]/4 again, for complex<float> storage.
    return reinterpret_cast<const float*>(a.values_f32().data());
  }
}

/// One output row's share of a b x b block multiply-accumulate:
/// acc += blk(ib, jb) * v(bc*B + jb) over the pass lanes, for every jb with
/// entry (ib, jb) nonzero.  Identical expression tree for every W, so the
/// fixed/generic parity contract extends to the block formats.
///
/// Entries that are exactly zero — the explicit fill of a half-dense block
/// (1 - beta of the stored values) and the SELL-block chunk padding — must
/// not execute: a +-0 entry contributes nothing numerically, but the fill
/// would inflate the work by 1/beta (~2.2x on the TI matrix) and push the
/// kernel from bandwidth- to compute-bound.  Instead of testing entries
/// for zero, the walk extracts row ib's bits of the precomputed per-block
/// occupancy word (BsrMatrix::block_mask; bit e = jb*B + ib, column-major)
/// and iterates the survivors with countr_zero — useful entries only, and
/// an all-zero padding block exits immediately.  Ascending set bits give
/// ascending jb, so per output row the multiply-accumulate order is the
/// scalar-CRS column order and the results stay bitwise identical.
template <int B, class VT, class W>
inline void block_mac_row(W wt, const VT* __restrict__ blk,
                          std::uint16_t mask, int ib,
                          const double* __restrict__ vd, std::size_t vrow0,
                          int stride, int off, double* __restrict__ acc_re,
                          double* __restrict__ acc_im) {
  const int lanes = wt.get();
  constexpr std::uint16_t row_bits =
      B == 4 ? 0x1111 : (B == 2 ? 0x5 : 0x1);  // bits jb*B
  std::uint16_t m = static_cast<std::uint16_t>((mask >> ib) & row_bits);
  while (m != 0) {
    const int jb = std::countr_zero(m) / B;
    m = static_cast<std::uint16_t>(m & (m - 1));
    const double mre = static_cast<double>(blk[2 * (jb * B + ib)]);
    const double mim = static_cast<double>(blk[2 * (jb * B + ib) + 1]);
    const double* __restrict__ vr =
        vd + 2 * ((vrow0 + static_cast<std::size_t>(jb)) * stride + off);
#pragma omp simd
    for (int r = 0; r < lanes; ++r) {
      acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
      acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
    }
  }
}

/// block_mac_row with the per-row diagonal stream value `d` merged into the
/// jb == ib entry before the multiply: one fused (coeff + d) factor, exactly
/// the assembled diagonal value, so the stencil's bitwise contract holds.
/// Stencil coefficient blocks are complex_t (split re/im via re_im()).
template <int B, class W>
inline void onsite_mac_row(W wt, const double* __restrict__ blk,
                           std::uint16_t mask, int ib, double d,
                           const double* __restrict__ vd, std::size_t vrow0,
                           int stride, int off, double* __restrict__ acc_re,
                           double* __restrict__ acc_im) {
  const int lanes = wt.get();
  constexpr std::uint16_t row_bits = B == 4 ? 0x1111 : (B == 2 ? 0x5 : 0x1);
  std::uint16_t m = static_cast<std::uint16_t>((mask >> ib) & row_bits);
  while (m != 0) {
    const int jb = std::countr_zero(m) / B;
    m = static_cast<std::uint16_t>(m & (m - 1));
    double mre = blk[2 * (jb * B + ib)];
    const double mim = blk[2 * (jb * B + ib) + 1];
    if (jb == ib) mre += d;
    const double* __restrict__ vr =
        vd + 2 * ((vrow0 + static_cast<std::size_t>(jb)) * stride + off);
#pragma omp simd
    for (int r = 0; r < lanes; ++r) {
      acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
      acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
    }
  }
}


// One column-tile pass of the BSR loop over the *scalar* rows
// [row_begin, row_end).
//
// The loop walks scalar rows (block row br = i/B, sub-row ib = i%B) so that
// threads can split the scalar row space with the same static partition as
// the CRS kernels — BSR dot products are then bitwise identical to CRS at
// any thread count and partition.  One row's split accumulators fit in
// registers for the whole block-row walk — the scalar-CRS structure —
// instead of keeping B rows live and pushing every multiply-accumulate
// through L1; the B - 1 re-walks of a block row's values, indices and v
// block-rows hit L1 (a TI block row is ~2 KB).
template <int B, class VT, bool D16, class W, bool WithDots, bool NT>
void bsr_pass(const BsrMatrix& a, const ScalarsRI& s,
              const double* __restrict__ vd, double* __restrict__ wd,
              int stride, int off, global_index row_begin,
              global_index row_end, W wt, double* __restrict__ lvv,
              double* __restrict__ lwr, double* __restrict__ lwi,
              double* acc_scratch) {
  const int lanes = wt.get();
  const auto* __restrict__ bptr = a.block_ptr().data();
  const auto* __restrict__ bcol = a.block_col().data();
  const auto* __restrict__ first =
      D16 ? a.first_block_col().data() : nullptr;
  const auto* __restrict__ delta = D16 ? a.col_delta16().data() : nullptr;
  const auto* __restrict__ bmask = a.block_mask().data();
  const VT* __restrict__ vald = block_values<VT>(a);
  PassAccumulators<W> acc(wt, acc_scratch);
  double* __restrict__ acc_re = acc.re;
  double* __restrict__ acc_im = acc.im;
  for (global_index i = row_begin; i < row_end; ++i) {
    const global_index br = i / B;
    const int ib = static_cast<int>(i % B);
    const global_index klo = bptr[br];
    const global_index khi = bptr[br + 1];
#pragma omp simd
    for (int r = 0; r < lanes; ++r) {
      acc_re[r] = 0.0;
      acc_im[r] = 0.0;
    }
    local_index bc = D16 ? first[br] : 0;
    for (global_index k = klo; k < khi; ++k) {
      if constexpr (D16) {
        bc += static_cast<local_index>(delta[k]);
      } else {
        bc = bcol[k];
      }
      const VT* __restrict__ blk =
          vald + 2 * static_cast<std::size_t>(k) * B * B;
      block_mac_row<B, VT>(wt, blk, bmask[k], ib, vd,
                           static_cast<std::size_t>(bc) * B, stride, off,
                           acc_re, acc_im);
    }
    const std::size_t base = static_cast<std::size_t>(i) * stride + off;
    finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * base,
                                wd + 2 * base, lvv, lwr, lwi);
  }
}

// One column-tile pass of the matrix-free stencil over the scalar rows
// [row_begin, row_end) (DESIGN.md §5h).  Interior rows multiply the shared
// Term coefficient blocks (registers/L1) against branch-free neighbour
// offsets — no matrix stream at all except the optional one-f64-per-row
// diagonal (Diag); boundary rows fall back to the operator's CRS-style
// indexed entries.  Per row the multiply-accumulate order is ascending
// delta, ascending jb within a term = the assembled-CRS ascending-column
// order, so results are bitwise identical to the CRS pass.
template <int B, bool Diag, class W, bool WithDots, bool NT>
void stencil_pass(const StencilOperator& a, const ScalarsRI& s,
                  const double* __restrict__ vd, double* __restrict__ wd,
                  int stride, int off, global_index row_begin,
                  global_index row_end, W wt, double* __restrict__ lvv,
                  double* __restrict__ lwr, double* __restrict__ lwi,
                  double* acc_scratch) {
  const int lanes = wt.get();
  const std::span<const StencilOperator::Term> terms = a.terms();
  const int nterms = static_cast<int>(terms.size());
  const int onsite = a.onsite_term();
  const int phase = a.row_phase();
  const double* __restrict__ dg = Diag ? a.diag().data() : nullptr;
  const auto* __restrict__ bptr = a.boundary_ptr().data();
  const auto* __restrict__ bcol = a.boundary_col().data();
  const double* __restrict__ bval = re_im(a.boundary_val().data());
  PassAccumulators<W> acc(wt, acc_scratch);
  double* __restrict__ acc_re = acc.re;
  double* __restrict__ acc_im = acc.im;
  for (const StencilOperator::Segment& seg : a.segments()) {
    const global_index lo = std::max(seg.begin, row_begin);
    const global_index hi = std::min(seg.end, row_end);
    if (lo >= hi) continue;
    if (seg.interior) {
      for (global_index i = lo; i < hi; ++i) {
        const int ib = static_cast<int>((i + phase) % B);
#pragma omp simd
        for (int r = 0; r < lanes; ++r) {
          acc_re[r] = 0.0;
          acc_im[r] = 0.0;
        }
        for (int t = 0; t < nterms; ++t) {
          const StencilOperator::Term& tm = terms[static_cast<std::size_t>(t)];
          // First row of the neighbour's block in local indices; interior
          // classification guarantees it lies inside the local vectors.
          const std::size_t vrow0 =
              static_cast<std::size_t>(i - ib + B * tm.delta);
          if constexpr (Diag) {
            if (t == onsite) {
              onsite_mac_row<B>(wt, re_im(tm.coeff.data()), tm.mask, ib,
                                dg[i], vd, vrow0, stride, off, acc_re,
                                acc_im);
              continue;
            }
          }
          block_mac_row<B, double>(wt, re_im(tm.coeff.data()), tm.mask, ib,
                                   vd, vrow0, stride, off, acc_re, acc_im);
        }
        const std::size_t base = static_cast<std::size_t>(i) * stride + off;
        finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * base,
                                    wd + 2 * base, lvv, lwr, lwi);
      }
    } else {
      for (global_index i = lo; i < hi; ++i) {
        const global_index q = seg.bnd_row0 + (i - seg.begin);
#pragma omp simd
        for (int r = 0; r < lanes; ++r) {
          acc_re[r] = 0.0;
          acc_im[r] = 0.0;
        }
        for (global_index k = bptr[q]; k < bptr[q + 1]; ++k) {
          const double mre = bval[2 * k], mim = bval[2 * k + 1];
          const double* __restrict__ vr =
              vd + 2 * (static_cast<std::size_t>(bcol[k]) * stride + off);
#pragma omp simd
          for (int r = 0; r < lanes; ++r) {
            acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
            acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
          }
        }
        const std::size_t base = static_cast<std::size_t>(i) * stride + off;
        finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * base,
                                    wd + 2 * base, lvv, lwr, lwi);
      }
    }
  }
}

// One column-tile pass of the SELL-block chunk loop over
// [chunk_begin, chunk_end); padding blocks cost nothing via mask 0.  Same
// ib-outer structure as bsr_pass: one output row's accumulators stay in
// registers across the lane's whole block walk.
template <int B, class VT, bool D16, class W, bool WithDots, bool NT>
void sell_block_pass(const SellBlockMatrix& a, const ScalarsRI& s,
                     const double* __restrict__ vd, double* __restrict__ wd,
                     int stride, int off, global_index chunk_begin,
                     global_index chunk_end, W wt, double* __restrict__ lvv,
                     double* __restrict__ lwr, double* __restrict__ lwi,
                     double* acc_scratch) {
  const int lanes = wt.get();
  const int chunk = a.chunk_height();
  const global_index nbr = a.block_rows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ bcol = a.block_col().data();
  const auto* __restrict__ first =
      D16 ? a.first_block_col().data() : nullptr;
  const auto* __restrict__ delta = D16 ? a.col_delta16().data() : nullptr;
  const auto* __restrict__ bmask = a.block_mask().data();
  const VT* __restrict__ vald = block_values<VT>(a);
  PassAccumulators<W> acc(wt, acc_scratch);
  double* __restrict__ acc_re = acc.re;
  double* __restrict__ acc_im = acc.im;
  for (global_index c = chunk_begin; c < chunk_end; ++c) {
    const global_index base = cptr[c];
    const int rows_in_chunk =
        static_cast<int>(std::min<global_index>(chunk, nbr - c * chunk));
    for (int lane = 0; lane < rows_in_chunk; ++lane) {
      const global_index br = c * chunk + lane;
      for (int ib = 0; ib < B; ++ib) {
#pragma omp simd
        for (int r = 0; r < lanes; ++r) {
          acc_re[r] = 0.0;
          acc_im[r] = 0.0;
        }
        local_index bc = D16 ? first[br] : 0;
        for (local_index j = 0; j < clen[c]; ++j) {
          const global_index moff =
              base + static_cast<global_index>(j) * chunk + lane;
          if constexpr (D16) {
            bc += static_cast<local_index>(delta[moff]);
          } else {
            bc = bcol[moff];
          }
          const VT* __restrict__ blk =
              vald + 2 * static_cast<std::size_t>(moff) * B * B;
          block_mac_row<B, VT>(wt, blk, bmask[moff], ib, vd,
                               static_cast<std::size_t>(bc) * B, stride, off,
                               acc_re, acc_im);
        }
        const std::size_t base_w =
            (static_cast<std::size_t>(br) * B + ib) * stride + off;
        finish_row<W, WithDots, NT>(wt, s, acc_re, acc_im, vd + 2 * base_w,
                                    wd + 2 * base_w, lvv, lwr, lwi);
      }
    }
  }
}

/// Routes (block_dim, precision, index_bits) onto the compile-time template
/// parameters of the block passes: f(int_const<B>, type_identity<VT>,
/// bool_const<D16>).
template <class F>
void dispatch_block_format(int block_dim, bool f32, bool d16, F&& f) {
  const auto with_vt = [&](auto bb, auto vt) {
    if (d16) {
      f(bb, vt, std::bool_constant<true>{});
    } else {
      f(bb, vt, std::bool_constant<false>{});
    }
  };
  const auto with_b = [&](auto bb) {
    if (f32) {
      with_vt(bb, std::type_identity<float>{});
    } else {
      with_vt(bb, std::type_identity<double>{});
    }
  };
  if (block_dim == 2) {
    with_b(std::integral_constant<int, 2>{});
  } else {
    with_b(std::integral_constant<int, 4>{});
  }
}

/// Routes (block_dim, has_diag) onto the stencil pass's compile-time
/// parameters: f(int_const<B>, bool_const<Diag>).
template <class F>
void dispatch_stencil(int block_dim, bool diag, F&& f) {
  const auto with_b = [&](auto bb) {
    if (diag) {
      f(bb, std::bool_constant<true>{});
    } else {
      f(bb, std::bool_constant<false>{});
    }
  };
  if (block_dim == 1) {
    with_b(std::integral_constant<int, 1>{});
  } else if (block_dim == 2) {
    with_b(std::integral_constant<int, 2>{});
  } else {
    with_b(std::integral_constant<int, 4>{});
  }
}

// ---------------------------------------------------------------------------
// Parallel orchestration shared by every block kernel: one parallel region;
// each thread takes its static slice of the iteration space, walks it band
// by band, and runs every column-tile pass of the plan per band.  The dot
// partials accumulate across bands and passes and are published once, so
// per-lane accumulation order (rows ascending within a thread) — and thus
// every bit of the result — is independent of the banding/tiling choices.
//
// The iteration space is a list of disjoint ascending segments (the
// overlapped halo exchange sweeps scattered interior/boundary run lists).
// Threads split the *position* space — the concatenation of all segments —
// with the same static_chunk() partition the contiguous path uses; since
// static_chunk(begin, end, t, n) == begin + static_chunk(0, end-begin, t, n),
// a single-segment call assigns every row to the same thread as before and
// stays bitwise identical.
//
// `run_pass(wt, nt_tag, band_begin, band_end, pass, lvv, lwr, lwi, scratch)`
// executes one pass of the format-specific loop.
template <bool WithDots, class RunPass>
void run_block_kernel(int width, const SweepPlan& plan,
                      std::span<const IndexRange<global_index>> segments,
                      global_index band_step, complex_t* dot_vv,
                      complex_t* dot_wv, RunPass run_pass, int acc_rows = 1) {
  const KernelVariant variant = g_variant.load(std::memory_order_relaxed);
  DotPartials partials(WithDots ? width : 0);
  global_index total = 0;
  for (const auto& seg : segments) total += seg.end - seg.begin;
#pragma omp parallel
  {
    // Heap scratch per thread: runtime-width accumulators (acc_rows rows of
    // split re/im per lane — block formats keep b rows live) + dot partials.
    std::vector<double> scratch(
        (2 * static_cast<std::size_t>(acc_rows) + 3) *
            static_cast<std::size_t>(width),
        0.0);
    double* acc = scratch.data();
    double* lvv =
        acc + 2 * static_cast<std::size_t>(acc_rows) * static_cast<std::size_t>(width);
    double* lwr = lvv + width;
    double* lwi = lwr + width;

    const auto mine = static_chunk<global_index>(
        0, total, omp_get_thread_num(), omp_get_num_threads());
    global_index pos = 0;  // running start of this segment in position space
    for (const auto& seg : segments) {
      if (pos >= mine.end) break;
      const global_index len = seg.end - seg.begin;
      const global_index lo = std::max(mine.begin, pos);
      const global_index hi = std::min(mine.end, pos + len);
      pos += len;
      if (lo >= hi) continue;
      const global_index row_b = seg.begin + (lo - (pos - len));
      const global_index row_e = seg.begin + (hi - (pos - len));
      const global_index band =
          band_step > 0 ? band_step : std::max<global_index>(row_e - row_b, 1);
      for (global_index b = row_b; b < row_e; b += band) {
        const global_index e = std::min(b + band, row_e);
        for (int p = 0; p < plan.size(); ++p) {
          const TilePass& pass = plan.passes()[p];
          dispatch_lanes(pass.lanes, variant, [&](auto wt) {
            if (plan.nt) {
              run_pass(wt, std::bool_constant<true>{}, b, e, pass,
                       lvv + pass.offset, lwr + pass.offset, lwi + pass.offset,
                       acc);
            } else {
              run_pass(wt, std::bool_constant<false>{}, b, e, pass,
                       lvv + pass.offset, lwr + pass.offset, lwi + pass.offset,
                       acc);
            }
          });
        }
      }
    }
#ifdef KPM_HAVE_NT_STORES
    // Streaming stores are weakly ordered; fence before any thread's results
    // can be observed past the region barrier.
    if (plan.nt) _mm_sfence();
#endif
    if constexpr (WithDots) {
      partials.store(lvv, lwr, lwi);
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

/// Contiguous-range convenience wrapper (the single-segment case).
template <bool WithDots, class RunPass>
void run_block_kernel(int width, const SweepPlan& plan, global_index begin,
                      global_index end, global_index band_step,
                      complex_t* dot_vv, complex_t* dot_wv, RunPass run_pass,
                      int acc_rows = 1) {
  const IndexRange<global_index> seg{begin, end};
  run_block_kernel<WithDots>(width, plan,
                             std::span<const IndexRange<global_index>>(&seg, 1),
                             band_step, dot_vv, dot_wv, run_pass, acc_rows);
}

template <bool WithDots>
void aug_spmmv_crs_core_runs(const CrsMatrix& a, const AugScalars& scal,
                             const complex_t* v, complex_t* w, int width,
                             std::span<const IndexRange<global_index>> runs,
                             complex_t* dot_vv, complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  const SweepPlan plan = make_plan(width);
  run_block_kernel<WithDots>(
      width, plan, runs, plan.band_rows, dot_vv, dot_wv,
      [&](auto wt, auto nt, global_index b, global_index e,
          const TilePass& pass, double* lvv, double* lwr, double* lwi,
          double* acc) {
        crs_pass<decltype(wt), WithDots, decltype(nt)::value>(
            a, s, vd, wd, width, pass.offset, b, e, wt, lvv, lwr, lwi, acc);
      });
}

template <bool WithDots>
void aug_spmmv_crs_core(const CrsMatrix& a, const AugScalars& scal,
                        const complex_t* v, complex_t* w, int width,
                        global_index row_begin, global_index row_end,
                        complex_t* dot_vv, complex_t* dot_wv) {
  const IndexRange<global_index> seg{row_begin, row_end};
  aug_spmmv_crs_core_runs<WithDots>(
      a, scal, v, w, width,
      std::span<const IndexRange<global_index>>(&seg, 1), dot_vv, dot_wv);
}

template <bool WithDots>
void aug_spmmv_sell_core(const SellMatrix& a, const AugScalars& scal,
                         const complex_t* v, complex_t* w, int width,
                         complex_t* dot_vv, complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  const SweepPlan plan = make_plan(width);
  // Banding walks whole SELL chunks: band_rows rounded to chunk multiples.
  const global_index band_chunks =
      plan.band_rows > 0
          ? std::max<global_index>(plan.band_rows / a.chunk_height(), 1)
          : 0;
  run_block_kernel<WithDots>(
      width, plan, 0, a.num_chunks(), band_chunks, dot_vv, dot_wv,
      [&](auto wt, auto nt, global_index b, global_index e,
          const TilePass& pass, double* lvv, double* lwr, double* lwi,
          double* acc) {
        sell_pass<decltype(wt), WithDots, decltype(nt)::value>(
            a, s, vd, wd, width, pass.offset, b, e, wt, lvv, lwr, lwi, acc);
      });
}

// BSR core over a scalar-row run list: threads split scalar rows with the
// same static partition as the CRS kernels, so BSR dot products — and thus
// moments — are bitwise identical to CRS at any thread count and partition.
template <bool WithDots>
void aug_spmmv_bsr_core_runs(
    const BsrMatrix& a, const AugScalars& scal, const complex_t* v,
    complex_t* w, int width,
    std::span<const IndexRange<global_index>> runs, complex_t* dot_vv,
    complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  const int b = a.block_dim();
  const SweepPlan plan = make_plan(width, block_auto_tile(b));
  dispatch_block_format(
      b, a.precision() == MatrixPrecision::f32, a.index_bits() == 16,
      [&](auto bb, auto vt, auto d16) {
        constexpr int B = decltype(bb)::value;
        using VT = typename decltype(vt)::type;
        run_block_kernel<WithDots>(
            width, plan, runs, plan.band_rows, dot_vv, dot_wv,
            [&](auto wt, auto nt, global_index rb, global_index re,
                const TilePass& pass, double* lvv, double* lwr, double* lwi,
                double* acc) {
              bsr_pass<B, VT, decltype(d16)::value, decltype(wt), WithDots,
                       decltype(nt)::value>(a, s, vd, wd, width, pass.offset,
                                            rb, re, wt, lvv, lwr, lwi, acc);
            });
      });
}

// Stencil core over a scalar-row run list; same static scalar-row split, so
// stencil moments are bitwise identical to the assembled-CRS moments.
template <bool WithDots>
void aug_spmmv_stencil_core_runs(
    const StencilOperator& a, const AugScalars& scal, const complex_t* v,
    complex_t* w, int width, std::span<const IndexRange<global_index>> runs,
    complex_t* dot_vv, complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  const SweepPlan plan = make_plan(width, block_auto_tile(a.block_dim()));
  dispatch_stencil(a.block_dim(), a.has_diag(), [&](auto bb, auto dg) {
    constexpr int B = decltype(bb)::value;
    run_block_kernel<WithDots>(
        width, plan, runs, plan.band_rows, dot_vv, dot_wv,
        [&](auto wt, auto nt, global_index rb, global_index re,
            const TilePass& pass, double* lvv, double* lwr, double* lwi,
            double* acc) {
          stencil_pass<B, decltype(dg)::value, decltype(wt), WithDots,
                       decltype(nt)::value>(a, s, vd, wd, width, pass.offset,
                                            rb, re, wt, lvv, lwr, lwi, acc);
        });
  });
}

template <bool WithDots>
void aug_spmmv_sell_block_core(const SellBlockMatrix& a,
                               const AugScalars& scal, const complex_t* v,
                               complex_t* w, int width, complex_t* dot_vv,
                               complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  const int b = a.block_dim();
  const SweepPlan plan = make_plan(width, block_auto_tile(b));
  // Banding walks whole chunks of block rows.
  const global_index rows_per_chunk =
      static_cast<global_index>(a.chunk_height()) * b;
  const global_index band_chunks =
      plan.band_rows > 0
          ? std::max<global_index>(plan.band_rows / rows_per_chunk, 1)
          : 0;
  dispatch_block_format(
      b, a.precision() == MatrixPrecision::f32, a.index_bits() == 16,
      [&](auto bb, auto vt, auto d16) {
        constexpr int B = decltype(bb)::value;
        using VT = typename decltype(vt)::type;
        run_block_kernel<WithDots>(
            width, plan, 0, a.num_chunks(), band_chunks, dot_vv, dot_wv,
            [&](auto wt, auto nt, global_index cb, global_index ce,
                const TilePass& pass, double* lvv, double* lwr, double* lwi,
                double* acc) {
              sell_block_pass<B, VT, decltype(d16)::value, decltype(wt),
                              WithDots, decltype(nt)::value>(
                  a, s, vd, wd, width, pass.offset, cb, ce, wt, lvv, lwr, lwi,
                  acc);
            },
            B);
      });
}

// ---------------------------------------------------------------------------
// Stage-1 (single-vector) fused kernels, split-complex with the same
// deterministic reduction; WithDots=false compiles the reductions out.
template <bool WithDots>
void aug_spmv_crs_core(const CrsMatrix& a, const AugScalars& scal,
                       const complex_t* v, complex_t* w, complex_t* dot_vv,
                       complex_t* dot_wv) {
  const global_index nrows = a.nrows();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  const double* __restrict__ vd = re_im(v);
  double* __restrict__ wd = re_im(w);
  const ScalarsRI s(scal);
  DotPartials partials(WithDots ? 1 : 0);
#pragma omp parallel
  {
    double lvv = 0.0, lwr = 0.0, lwi = 0.0;
#pragma omp for schedule(static) nowait
    for (global_index i = 0; i < nrows; ++i) {
      double sre = 0.0, sim = 0.0;
      for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const double mre = vald[2 * k], mim = vald[2 * k + 1];
        const std::size_t c = static_cast<std::size_t>(col[k]);
        const double xre = vd[2 * c], xim = vd[2 * c + 1];
        sre += mre * xre - mim * xim;
        sim += mre * xim + mim * xre;
      }
      const double vre = vd[2 * i], vim = vd[2 * i + 1];
      const double wre0 = wd[2 * i], wim0 = wd[2 * i + 1];
      const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                         s.gr * wre0 - s.gi * wim0;
      const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                         s.gr * wim0 + s.gi * wre0;
      wd[2 * i] = wre;
      wd[2 * i + 1] = wim;
      if constexpr (WithDots) {
        lvv += vre * vre + vim * vim;
        lwr += wre * vre + wim * vim;
        lwi += wre * vim - wim * vre;
      }
    }
    if constexpr (WithDots) {
      partials.store(&lvv, &lwr, &lwi);
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

template <bool WithDots>
void aug_spmv_sell_core(const SellMatrix& a, const AugScalars& scal,
                        const complex_t* v, complex_t* w, complex_t* dot_vv,
                        complex_t* dot_wv) {
  const global_index nchunks = a.num_chunks();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  const double* __restrict__ vd = re_im(v);
  double* __restrict__ wd = re_im(w);
  const ScalarsRI s(scal);
  DotPartials partials(WithDots ? 1 : 0);
#pragma omp parallel
  {
    double lvv = 0.0, lwr = 0.0, lwi = 0.0;
#pragma omp for schedule(static) nowait
    for (global_index c = 0; c < nchunks; ++c) {
      const global_index base = cptr[c];
      const int lanes =
          static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
      for (int lane = 0; lane < lanes; ++lane) {
        const global_index i = c * chunk + lane;
        double sre = 0.0, sim = 0.0;
        for (local_index j = 0; j < clen[c]; ++j) {
          const global_index off =
              base + static_cast<global_index>(j) * chunk + lane;
          const double mre = vald[2 * off], mim = vald[2 * off + 1];
          const std::size_t cc = static_cast<std::size_t>(col[off]);
          const double xre = vd[2 * cc], xim = vd[2 * cc + 1];
          sre += mre * xre - mim * xim;
          sim += mre * xim + mim * xre;
        }
        const double vre = vd[2 * i], vim = vd[2 * i + 1];
        const double wre0 = wd[2 * i], wim0 = wd[2 * i + 1];
        const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                           s.gr * wre0 - s.gi * wim0;
        const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                           s.gr * wim0 + s.gi * wre0;
        wd[2 * i] = wre;
        wd[2 * i + 1] = wim;
        if constexpr (WithDots) {
          lvv += vre * vre + vim * vim;
          lwr += wre * vre + wim * vim;
          lwi += wre * vim - wim * vre;
        }
      }
    }
    if constexpr (WithDots) {
      partials.store(&lvv, &lwr, &lwi);
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

}  // namespace

void set_kernel_variant(KernelVariant v) noexcept {
  g_variant.store(v, std::memory_order_relaxed);
}

KernelVariant kernel_variant() noexcept {
  return g_variant.load(std::memory_order_relaxed);
}

const char* kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::auto_dispatch: return "auto";
    case KernelVariant::force_generic: return "generic";
    case KernelVariant::force_fixed: return "fixed";
  }
  return "unknown";
}

bool has_fixed_width(int width) noexcept {
  switch (width) {
    case 1:
    case 2:
    case 4:
    case 8:
    case 16:
    case 32:
    case 64: return true;
    default: return false;
  }
}

void set_tile_config(const TileConfig& c) noexcept {
  g_tile_width.store(c.tile_width, std::memory_order_relaxed);
  g_band_rows.store(c.band_rows >= 0 ? c.band_rows : 0,
                    std::memory_order_relaxed);
  g_nt_stores.store(c.nt_stores, std::memory_order_relaxed);
}

TileConfig tile_config() noexcept {
  return {g_tile_width.load(std::memory_order_relaxed),
          g_band_rows.load(std::memory_order_relaxed),
          g_nt_stores.load(std::memory_order_relaxed)};
}

int effective_tile_width(int width) noexcept {
  const int tile =
      resolve_tile_width(width, g_variant.load(std::memory_order_relaxed));
  return tile < width ? tile : width;
}

bool nt_stores_supported() noexcept {
#ifdef KPM_HAVE_NT_STORES
  return true;
#else
  return false;
#endif
}

void aug_spmv(const CrsMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv) {
  check_single(a.nrows(), a.ncols(), v, w);
  if (dot_vv == nullptr && dot_wv == nullptr) {
    aug_spmv_crs_core<false>(a, s, v.data(), w.data(), nullptr, nullptr);
    return;
  }
  complex_t vv{}, wv{};
  aug_spmv_crs_core<true>(a, s, v.data(), w.data(), &vv, &wv);
  if (dot_vv != nullptr) *dot_vv = vv;
  if (dot_wv != nullptr) *dot_wv = wv;
}

void aug_spmv(const SellMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv) {
  check_single(a.nrows(), a.ncols(), v, w);
  if (dot_vv == nullptr && dot_wv == nullptr) {
    aug_spmv_sell_core<false>(a, s, v.data(), w.data(), nullptr, nullptr);
    return;
  }
  complex_t vv{}, wv{};
  aug_spmv_sell_core<true>(a, s, v.data(), w.data(), &vv, &wv);
  if (dot_vv != nullptr) *dot_vv = vv;
  if (dot_wv != nullptr) *dot_wv = wv;
}

void aug_spmmv(const CrsMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_crs_core<false>(a, s, v.data(), w.data(), width, 0, a.nrows(),
                              nullptr, nullptr);
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    aug_spmmv_crs_core<true>(a, s, v.data(), w.data(), width, 0, a.nrows(),
                             dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_rows(const CrsMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  require(row_begin >= 0 && row_begin <= row_end && row_end <= a.nrows(),
          "aug_spmmv_rows: invalid row interval");
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_crs_core<false>(a, s, v.data(), w.data(), width, row_begin,
                              row_end, nullptr, nullptr);
  } else {
    // Accumulate-only contract (see header): caller zeroes before the first
    // partial call of a sweep, so split interior/boundary sweeps compose.
    aug_spmmv_crs_core<true>(a, s, v.data(), w.data(), width, row_begin,
                             row_end, dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_runs(const CrsMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  global_index prev = 0;
  for (const auto& r : runs) {
    require(r.begin >= prev && r.begin <= r.end && r.end <= a.nrows(),
            "aug_spmmv_runs: runs must be ascending, disjoint and in bounds");
    prev = r.end;
  }
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_crs_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                   nullptr, nullptr);
  } else {
    // Accumulate-only contract, like aug_spmmv_rows.
    aug_spmmv_crs_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                  dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv(const SellMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_sell_core<false>(a, s, v.data(), w.data(), width, nullptr,
                               nullptr);
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    aug_spmmv_sell_core<true>(a, s, v.data(), w.data(), width, dot_vv.data(),
                              dot_wv.data());
  }
}

void aug_spmmv(const BsrMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  const IndexRange<global_index> all{0, a.nrows()};
  const std::span<const IndexRange<global_index>> runs(&all, 1);
  if (dot_vv.empty()) {
    aug_spmmv_bsr_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                   nullptr, nullptr);
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    aug_spmmv_bsr_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                  dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_rows(const BsrMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  require(row_begin >= 0 && row_begin <= row_end && row_end <= a.nrows(),
          "aug_spmmv_rows: invalid row interval");
  const int width = v.width();
  const IndexRange<global_index> seg{row_begin, row_end};
  const std::span<const IndexRange<global_index>> runs(&seg, 1);
  if (dot_vv.empty()) {
    aug_spmmv_bsr_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                   nullptr, nullptr);
  } else {
    // Accumulate-only contract, like the CRS row-interval kernel.
    aug_spmmv_bsr_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                  dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_runs(const BsrMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  global_index prev = 0;
  for (const auto& r : runs) {
    require(r.begin >= prev && r.begin <= r.end && r.end <= a.nrows(),
            "aug_spmmv_runs: runs must be ascending, disjoint and in bounds");
    prev = r.end;
  }
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_bsr_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                   nullptr, nullptr);
  } else {
    // Accumulate-only contract, like the CRS run-list kernel.
    aug_spmmv_bsr_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                  dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv(const SellBlockMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_sell_block_core<false>(a, s, v.data(), w.data(), width, nullptr,
                                     nullptr);
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    aug_spmmv_sell_block_core<true>(a, s, v.data(), w.data(), width,
                                    dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv(const StencilOperator& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  const IndexRange<global_index> all{0, a.nrows()};
  const std::span<const IndexRange<global_index>> runs(&all, 1);
  if (dot_vv.empty()) {
    aug_spmmv_stencil_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                       nullptr, nullptr);
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    aug_spmmv_stencil_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                      dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_rows(const StencilOperator& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  require(row_begin >= 0 && row_begin <= row_end && row_end <= a.nrows(),
          "aug_spmmv_rows: invalid row interval");
  const int width = v.width();
  const IndexRange<global_index> seg{row_begin, row_end};
  const std::span<const IndexRange<global_index>> runs(&seg, 1);
  if (dot_vv.empty()) {
    aug_spmmv_stencil_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                       nullptr, nullptr);
  } else {
    // Accumulate-only contract, like the CRS row-interval kernel.
    aug_spmmv_stencil_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                      dot_vv.data(), dot_wv.data());
  }
}

void aug_spmmv_runs(const StencilOperator& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  global_index prev = 0;
  for (const auto& r : runs) {
    require(r.begin >= prev && r.begin <= r.end && r.end <= a.nrows(),
            "aug_spmmv_runs: runs must be ascending, disjoint and in bounds");
    prev = r.end;
  }
  const int width = v.width();
  if (dot_vv.empty()) {
    aug_spmmv_stencil_core_runs<false>(a, s, v.data(), w.data(), width, runs,
                                       nullptr, nullptr);
  } else {
    // Accumulate-only contract, like the CRS run-list kernel.
    aug_spmmv_stencil_core_runs<true>(a, s, v.data(), w.data(), width, runs,
                                      dot_vv.data(), dot_wv.data());
  }
}

}  // namespace kpm::sparse
