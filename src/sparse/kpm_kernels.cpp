#include "sparse/kpm_kernels.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::sparse {
namespace {

#ifndef _OPENMP
inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
#endif

std::atomic<KernelVariant> g_variant{KernelVariant::auto_dispatch};

// The kernels accept rectangular matrices with ncols >= nrows: a
// distributed-memory partition owns `nrows` rows but reads a halo-extended
// input of `ncols` entries (src/runtime).  Only the first nrows entries of
// v/w enter the on-the-fly dot products — exactly the locally owned rows.
void check_single(const global_index nrows, const global_index ncols,
                  std::span<const complex_t> v, std::span<complex_t> w) {
  require(ncols >= nrows, "aug_spmv: ncols must be >= nrows");
  require(v.size() == static_cast<std::size_t>(ncols) &&
              w.size() >= static_cast<std::size_t>(nrows),
          "aug_spmv: vector sizes must match the matrix shape");
}

bool spans_overlap(std::span<const complex_t> a, std::span<const complex_t> b) {
  if (a.empty() || b.empty()) return false;
  // std::less gives a total pointer order even across unrelated objects.
  const std::less<const complex_t*> lt;
  const auto* a_end = a.data() + a.size();
  const auto* b_end = b.data() + b.size();
  return lt(a.data(), b_end) && lt(b.data(), a_end);
}

void check_block(const global_index nrows, const global_index ncols,
                 const blas::BlockVector& v, const blas::BlockVector& w,
                 std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  require(ncols >= nrows, "aug_spmmv: ncols must be >= nrows");
  require(v.rows() == ncols && w.rows() >= nrows && v.width() == w.width(),
          "aug_spmmv: shape mismatch");
  require(v.layout() == blas::Layout::row_major &&
              w.layout() == blas::Layout::row_major,
          "aug_spmmv: row-major block vectors required");
  require(dot_vv.empty() || dot_vv.size() == static_cast<std::size_t>(v.width()),
          "aug_spmmv: dot_vv must be empty or match the block width");
  require(dot_wv.empty() || dot_wv.size() == static_cast<std::size_t>(v.width()),
          "aug_spmmv: dot_wv must be empty or match the block width");
  require(dot_vv.empty() == dot_wv.empty(),
          "aug_spmmv: pass both dot outputs or neither");
  require(!spans_overlap(dot_vv, v.span()) && !spans_overlap(dot_vv, w.span()) &&
              !spans_overlap(dot_wv, v.span()) &&
              !spans_overlap(dot_wv, w.span()),
          "aug_spmmv: dot spans must not alias the v/w storage");
}

// ---------------------------------------------------------------------------
// Split-complex views.  complex_t storage is interleaved (re, im) doubles and
// [complex.numbers.general]/4 guarantees array-oriented access through a
// reinterpreted double pointer; computing on the parts directly lets the
// compiler emit FMA arithmetic instead of complex-multiply library calls.
inline const double* re_im(const complex_t* p) noexcept {
  return reinterpret_cast<const double*>(p);
}
inline double* re_im(complex_t* p) noexcept {
  return reinterpret_cast<double*>(p);
}

/// AugScalars hoisted into plain doubles for the split loops.
struct ScalarsRI {
  double ar, ai, br, bi, gr, gi;
  explicit ScalarsRI(const AugScalars& s) noexcept
      : ar(s.alpha.real()),
        ai(s.alpha.imag()),
        br(s.beta.real()),
        bi(s.beta.imag()),
        gr(s.gamma.real()),
        gi(s.gamma.imag()) {}
};

// Width tags of the dispatch layer: FixedWidth<R> makes every lane loop a
// compile-time-constant trip count (fully unrolled / vectorized with
// stack-resident accumulators), RuntimeWidth is the generic fallback.
template <int N>
struct FixedWidth {
  static constexpr bool fixed = true;
  static constexpr int compile_width = N;
  constexpr int get() const noexcept { return N; }
};
struct RuntimeWidth {
  static constexpr bool fixed = false;
  static constexpr int compile_width = 1;  // storage bound only; unused
  int w;
  int get() const noexcept { return w; }
};

// ---------------------------------------------------------------------------
// Lock-free deterministic dot reduction.  Each thread accumulates its dot
// partials locally and publishes them once into a cache-line-padded slot of
// this buffer; after a barrier a single thread combines the slots in
// ascending thread order.  With a static loop schedule the row->thread
// assignment is fixed, so the result is bitwise reproducible at any fixed
// thread count — replacing the unordered `omp critical` merges.
class DotPartials {
 public:
  explicit DotPartials(int width)
      : width_(width),
        slot_((3 * static_cast<std::size_t>(width) + 7) / 8 * 8),
        buf_(slot_ * static_cast<std::size_t>(omp_get_max_threads()), 0.0) {}

  /// Publishes one thread's partials (called inside the parallel region).
  void store(const double* vv, const double* wv_re, const double* wv_im) {
    double* slot = buf_.data() + slot_ * omp_get_thread_num();
    for (int r = 0; r < width_; ++r) {
      slot[r] = vv[r];
      slot[width_ + r] = wv_re[r];
      slot[2 * width_ + r] = wv_im[r];
    }
  }

  /// Adds all published partials into the caller's spans, thread 0 first.
  /// Call from one thread only, after a barrier.
  void reduce_into(complex_t* dot_vv, complex_t* dot_wv) const {
    const int nthreads = omp_get_num_threads();
    for (int t = 0; t < nthreads; ++t) {
      const double* slot = buf_.data() + slot_ * t;
      for (int r = 0; r < width_; ++r) {
        dot_vv[r] += complex_t{slot[r], 0.0};
        dot_wv[r] += complex_t{slot[width_ + r], slot[2 * width_ + r]};
      }
    }
  }

 private:
  int width_;
  std::size_t slot_;  // doubles per thread, padded to a 64-byte multiple
  aligned_vector<double> buf_;
};

// ---------------------------------------------------------------------------
// Shared row epilogue: w_i = alpha*acc + beta*v_i + gamma*w_i on split
// parts, plus the on-the-fly |v_i|^2 and conj(w_new)*v_i partials.
template <class W, bool WithDots>
inline void finish_row(W wt, const ScalarsRI& s,
                       const double* __restrict__ acc_re,
                       const double* __restrict__ acc_im,
                       const double* __restrict__ vi, double* __restrict__ wi,
                       double* __restrict__ lvv, double* __restrict__ lwr,
                       double* __restrict__ lwi) {
  const int width = wt.get();
#pragma omp simd
  for (int r = 0; r < width; ++r) {
    const double vre = vi[2 * r], vim = vi[2 * r + 1];
    const double wre0 = wi[2 * r], wim0 = wi[2 * r + 1];
    const double sre = acc_re[r], sim = acc_im[r];
    const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                       s.gr * wre0 - s.gi * wim0;
    const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                       s.gr * wim0 + s.gi * wre0;
    wi[2 * r] = wre;
    wi[2 * r + 1] = wim;
    if constexpr (WithDots) {
      lvv[r] += vre * vre + vim * vim;
      lwr[r] += wre * vre + wim * vim;  // Re(conj(w_new) * v)
      lwi[r] += wre * vim - wim * vre;  // Im(conj(w_new) * v)
    }
  }
}

// Per-thread CRS row loop (orphaned omp-for: binds to the enclosing team).
template <class W, bool WithDots>
void crs_rows_loop(const CrsMatrix& a, const ScalarsRI& s,
                   const double* __restrict__ vd, double* __restrict__ wd,
                   global_index row_begin, global_index row_end, W wt,
                   double* __restrict__ acc_re, double* __restrict__ acc_im,
                   double* __restrict__ lvv, double* __restrict__ lwr,
                   double* __restrict__ lwi) {
  const int width = wt.get();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
#pragma omp for schedule(static) nowait
  for (global_index i = row_begin; i < row_end; ++i) {
#pragma omp simd
    for (int r = 0; r < width; ++r) {
      acc_re[r] = 0.0;
      acc_im[r] = 0.0;
    }
    for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double mre = vald[2 * k], mim = vald[2 * k + 1];
      const double* __restrict__ vr =
          vd + 2 * static_cast<std::size_t>(col[k]) * width;
#pragma omp simd
      for (int r = 0; r < width; ++r) {
        acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
        acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
      }
    }
    finish_row<W, WithDots>(wt, s, acc_re, acc_im,
                            vd + 2 * static_cast<std::size_t>(i) * width,
                            wd + 2 * static_cast<std::size_t>(i) * width, lvv,
                            lwr, lwi);
  }
}

// Per-thread SELL chunk loop.
template <class W, bool WithDots>
void sell_chunks_loop(const SellMatrix& a, const ScalarsRI& s,
                      const double* __restrict__ vd, double* __restrict__ wd,
                      W wt, double* __restrict__ acc_re,
                      double* __restrict__ acc_im, double* __restrict__ lvv,
                      double* __restrict__ lwr, double* __restrict__ lwi) {
  const int width = wt.get();
  const global_index nchunks = a.num_chunks();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
#pragma omp for schedule(static) nowait
  for (global_index c = 0; c < nchunks; ++c) {
    const global_index base = cptr[c];
    const int lanes =
        static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
    for (int lane = 0; lane < lanes; ++lane) {
      const global_index i = c * chunk + lane;
#pragma omp simd
      for (int r = 0; r < width; ++r) {
        acc_re[r] = 0.0;
        acc_im[r] = 0.0;
      }
      for (local_index j = 0; j < clen[c]; ++j) {
        const global_index off =
            base + static_cast<global_index>(j) * chunk + lane;
        const double mre = vald[2 * off], mim = vald[2 * off + 1];
        const double* __restrict__ vr =
            vd + 2 * static_cast<std::size_t>(col[off]) * width;
#pragma omp simd
        for (int r = 0; r < width; ++r) {
          acc_re[r] += mre * vr[2 * r] - mim * vr[2 * r + 1];
          acc_im[r] += mre * vr[2 * r + 1] + mim * vr[2 * r];
        }
      }
      finish_row<W, WithDots>(wt, s, acc_re, acc_im,
                              vd + 2 * static_cast<std::size_t>(i) * width,
                              wd + 2 * static_cast<std::size_t>(i) * width,
                              lvv, lwr, lwi);
    }
  }
}

// Parallel orchestration shared by every block kernel: pick accumulator
// storage (stack for fixed widths, per-thread heap otherwise), run the
// format-specific loop, publish + order-reduce the dot partials.  `loop` is
// called once per thread with (acc_re, acc_im, lvv, lwr, lwi).
template <class W, bool WithDots, class Loop>
void run_block_kernel(W wt, complex_t* dot_vv, complex_t* dot_wv, Loop loop) {
  const int width = wt.get();
  DotPartials partials(WithDots ? width : 0);
#pragma omp parallel
  {
    if constexpr (W::fixed) {
      constexpr int R = W::compile_width;
      std::array<double, R> acc_re{}, acc_im{};
      std::array<double, WithDots ? R : 1> lvv{}, lwr{}, lwi{};
      loop(acc_re.data(), acc_im.data(), lvv.data(), lwr.data(), lwi.data());
      if constexpr (WithDots) partials.store(lvv.data(), lwr.data(), lwi.data());
    } else {
      std::vector<double> scratch(5 * static_cast<std::size_t>(width), 0.0);
      double* acc_re = scratch.data();
      double* acc_im = acc_re + width;
      double* lvv = acc_im + width;
      double* lwr = lvv + width;
      double* lwi = lwr + width;
      loop(acc_re, acc_im, lvv, lwr, lwi);
      if constexpr (WithDots) partials.store(lvv, lwr, lwi);
    }
    if constexpr (WithDots) {
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

template <class W, bool WithDots>
void aug_spmmv_crs_core(const CrsMatrix& a, const AugScalars& scal,
                        const complex_t* v, complex_t* w,
                        global_index row_begin, global_index row_end, W wt,
                        complex_t* dot_vv, complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  run_block_kernel<W, WithDots>(
      wt, dot_vv, dot_wv,
      [&](double* acc_re, double* acc_im, double* lvv, double* lwr,
          double* lwi) {
        crs_rows_loop<W, WithDots>(a, s, vd, wd, row_begin, row_end, wt,
                                   acc_re, acc_im, lvv, lwr, lwi);
      });
}

template <class W, bool WithDots>
void aug_spmmv_sell_core(const SellMatrix& a, const AugScalars& scal,
                         const complex_t* v, complex_t* w, W wt,
                         complex_t* dot_vv, complex_t* dot_wv) {
  const ScalarsRI s(scal);
  const double* vd = re_im(v);
  double* wd = re_im(w);
  run_block_kernel<W, WithDots>(
      wt, dot_vv, dot_wv,
      [&](double* acc_re, double* acc_im, double* lvv, double* lwr,
          double* lwi) {
        sell_chunks_loop<W, WithDots>(a, s, vd, wd, wt, acc_re, acc_im, lvv,
                                      lwr, lwi);
      });
}

// The width-dispatch table shared by the CRS and SELL block kernels.
template <class F>
void dispatch_width(int width, F&& f) {
  const KernelVariant variant = g_variant.load(std::memory_order_relaxed);
  if (variant != KernelVariant::force_generic) {
    switch (width) {
      case 1: f(FixedWidth<1>{}); return;
      case 2: f(FixedWidth<2>{}); return;
      case 4: f(FixedWidth<4>{}); return;
      case 8: f(FixedWidth<8>{}); return;
      case 16: f(FixedWidth<16>{}); return;
      case 32: f(FixedWidth<32>{}); return;
      case 64: f(FixedWidth<64>{}); return;
      default: break;
    }
  }
  f(RuntimeWidth{width});
}

// ---------------------------------------------------------------------------
// Stage-1 (single-vector) fused kernels, split-complex with the same
// deterministic reduction; WithDots=false compiles the reductions out.
template <bool WithDots>
void aug_spmv_crs_core(const CrsMatrix& a, const AugScalars& scal,
                       const complex_t* v, complex_t* w, complex_t* dot_vv,
                       complex_t* dot_wv) {
  const global_index nrows = a.nrows();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  const double* __restrict__ vd = re_im(v);
  double* __restrict__ wd = re_im(w);
  const ScalarsRI s(scal);
  DotPartials partials(WithDots ? 1 : 0);
#pragma omp parallel
  {
    double lvv = 0.0, lwr = 0.0, lwi = 0.0;
#pragma omp for schedule(static) nowait
    for (global_index i = 0; i < nrows; ++i) {
      double sre = 0.0, sim = 0.0;
      for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const double mre = vald[2 * k], mim = vald[2 * k + 1];
        const std::size_t c = static_cast<std::size_t>(col[k]);
        const double xre = vd[2 * c], xim = vd[2 * c + 1];
        sre += mre * xre - mim * xim;
        sim += mre * xim + mim * xre;
      }
      const double vre = vd[2 * i], vim = vd[2 * i + 1];
      const double wre0 = wd[2 * i], wim0 = wd[2 * i + 1];
      const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                         s.gr * wre0 - s.gi * wim0;
      const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                         s.gr * wim0 + s.gi * wre0;
      wd[2 * i] = wre;
      wd[2 * i + 1] = wim;
      if constexpr (WithDots) {
        lvv += vre * vre + vim * vim;
        lwr += wre * vre + wim * vim;
        lwi += wre * vim - wim * vre;
      }
    }
    if constexpr (WithDots) {
      partials.store(&lvv, &lwr, &lwi);
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

template <bool WithDots>
void aug_spmv_sell_core(const SellMatrix& a, const AugScalars& scal,
                        const complex_t* v, complex_t* w, complex_t* dot_vv,
                        complex_t* dot_wv) {
  const global_index nchunks = a.num_chunks();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const double* __restrict__ vald = re_im(a.values().data());
  const double* __restrict__ vd = re_im(v);
  double* __restrict__ wd = re_im(w);
  const ScalarsRI s(scal);
  DotPartials partials(WithDots ? 1 : 0);
#pragma omp parallel
  {
    double lvv = 0.0, lwr = 0.0, lwi = 0.0;
#pragma omp for schedule(static) nowait
    for (global_index c = 0; c < nchunks; ++c) {
      const global_index base = cptr[c];
      const int lanes =
          static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
      for (int lane = 0; lane < lanes; ++lane) {
        const global_index i = c * chunk + lane;
        double sre = 0.0, sim = 0.0;
        for (local_index j = 0; j < clen[c]; ++j) {
          const global_index off =
              base + static_cast<global_index>(j) * chunk + lane;
          const double mre = vald[2 * off], mim = vald[2 * off + 1];
          const std::size_t cc = static_cast<std::size_t>(col[off]);
          const double xre = vd[2 * cc], xim = vd[2 * cc + 1];
          sre += mre * xre - mim * xim;
          sim += mre * xim + mim * xre;
        }
        const double vre = vd[2 * i], vim = vd[2 * i + 1];
        const double wre0 = wd[2 * i], wim0 = wd[2 * i + 1];
        const double wre = s.ar * sre - s.ai * sim + s.br * vre - s.bi * vim +
                           s.gr * wre0 - s.gi * wim0;
        const double wim = s.ar * sim + s.ai * sre + s.br * vim + s.bi * vre +
                           s.gr * wim0 + s.gi * wre0;
        wd[2 * i] = wre;
        wd[2 * i + 1] = wim;
        if constexpr (WithDots) {
          lvv += vre * vre + vim * vim;
          lwr += wre * vre + wim * vim;
          lwi += wre * vim - wim * vre;
        }
      }
    }
    if constexpr (WithDots) {
      partials.store(&lvv, &lwr, &lwi);
#pragma omp barrier
#pragma omp master
      partials.reduce_into(dot_vv, dot_wv);
    }
  }
}

}  // namespace

void set_kernel_variant(KernelVariant v) noexcept {
  g_variant.store(v, std::memory_order_relaxed);
}

KernelVariant kernel_variant() noexcept {
  return g_variant.load(std::memory_order_relaxed);
}

const char* kernel_variant_name(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::auto_dispatch: return "auto";
    case KernelVariant::force_generic: return "generic";
    case KernelVariant::force_fixed: return "fixed";
  }
  return "unknown";
}

bool has_fixed_width(int width) noexcept {
  switch (width) {
    case 1:
    case 2:
    case 4:
    case 8:
    case 16:
    case 32:
    case 64: return true;
    default: return false;
  }
}

void aug_spmv(const CrsMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv) {
  check_single(a.nrows(), a.ncols(), v, w);
  if (dot_vv == nullptr && dot_wv == nullptr) {
    aug_spmv_crs_core<false>(a, s, v.data(), w.data(), nullptr, nullptr);
    return;
  }
  complex_t vv{}, wv{};
  aug_spmv_crs_core<true>(a, s, v.data(), w.data(), &vv, &wv);
  if (dot_vv != nullptr) *dot_vv = vv;
  if (dot_wv != nullptr) *dot_wv = wv;
}

void aug_spmv(const SellMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv) {
  check_single(a.nrows(), a.ncols(), v, w);
  if (dot_vv == nullptr && dot_wv == nullptr) {
    aug_spmv_sell_core<false>(a, s, v.data(), w.data(), nullptr, nullptr);
    return;
  }
  complex_t vv{}, wv{};
  aug_spmv_sell_core<true>(a, s, v.data(), w.data(), &vv, &wv);
  if (dot_vv != nullptr) *dot_vv = vv;
  if (dot_wv != nullptr) *dot_wv = wv;
}

void aug_spmmv(const CrsMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  if (dot_vv.empty()) {
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_crs_core<decltype(wt), false>(a, s, v.data(), w.data(), 0,
                                              a.nrows(), wt, nullptr, nullptr);
    });
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_crs_core<decltype(wt), true>(a, s, v.data(), w.data(), 0,
                                             a.nrows(), wt, dot_vv.data(),
                                             dot_wv.data());
    });
  }
}

void aug_spmmv_rows(const CrsMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  require(row_begin >= 0 && row_begin <= row_end && row_end <= a.nrows(),
          "aug_spmmv_rows: invalid row interval");
  const int width = v.width();
  if (dot_vv.empty()) {
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_crs_core<decltype(wt), false>(a, s, v.data(), w.data(),
                                              row_begin, row_end, wt, nullptr,
                                              nullptr);
    });
  } else {
    // Accumulate-only contract (see header): caller zeroes before the first
    // partial call of a sweep, so split interior/boundary sweeps compose.
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_crs_core<decltype(wt), true>(a, s, v.data(), w.data(),
                                             row_begin, row_end, wt,
                                             dot_vv.data(), dot_wv.data());
    });
  }
}

void aug_spmmv(const SellMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv) {
  check_block(a.nrows(), a.ncols(), v, w, dot_vv, dot_wv);
  const int width = v.width();
  if (dot_vv.empty()) {
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_sell_core<decltype(wt), false>(a, s, v.data(), w.data(), wt,
                                               nullptr, nullptr);
    });
  } else {
    std::fill(dot_vv.begin(), dot_vv.end(), complex_t{});
    std::fill(dot_wv.begin(), dot_wv.end(), complex_t{});
    dispatch_width(width, [&](auto wt) {
      aug_spmmv_sell_core<decltype(wt), true>(a, s, v.data(), w.data(), wt,
                                              dot_vv.data(), dot_wv.data());
    });
  }
}

}  // namespace kpm::sparse
