// Block Sparse Row storage (BSR) with b x b dense blocks, b in {2, 4}.
//
// The TI Hamiltonian couples 4 spin-orbital degrees per lattice site, so
// every nonzero belongs to a dense(ish) 4x4 site block.  Storing one column
// index per *block* amortizes the index over b^2 stored values and lets the
// kernel load one v block-row for b matrix rows — attacking the Nnz(Sd+Si)
// matrix-traffic term of the code-balance model (Eq. 5, DESIGN §5f) that
// R-blocking cannot touch.  Two further knobs shrink the stream:
//
//  - 16-bit delta column indices: within a block row, block-column indices
//    ascend, so each block stores the delta to its predecessor in a uint16
//    (the row's first block column sits in a per-row 32-bit side array).
//    Construction falls back to plain 32-bit indices automatically when any
//    delta overflows 65535, so arbitrary matrices stay representable.
//  - Opt-in mixed precision (MatrixPrecision::f32): matrix values stored as
//    complex<float>, kernel accumulators stay double.  Halves Sd for the
//    matrix stream; vectors and moments remain full double precision.  See
//    DESIGN §5f for the measured error bound.
//
// Zero fill-in is explicit: blocks are stored dense, and fill_ratio()
// reports nnz / stored (the TI gamma-matrix blocks are ~half dense, so BSR
// only pays off combined with the f32/u16 compression — matrix_stats
// records the block fill so benches can explain the outcome either way).
#pragma once

#include <complex>
#include <cstdint>
#include <span>

#include "sparse/crs.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace kpm::sparse {

/// Storage precision of matrix *values* (accumulators are always double).
enum class MatrixPrecision { f64, f32 };

[[nodiscard]] const char* precision_name(MatrixPrecision p) noexcept;

class BsrMatrix {
 public:
  BsrMatrix() = default;

  /// Converts from CRS.  Requires nrows and ncols divisible by `block_dim`
  /// (block_dim in {2, 4}).  Scalar entries are scattered into dense
  /// zero-filled blocks; values are preserved bitwise (f64) or narrowed once
  /// (f32).
  BsrMatrix(const CrsMatrix& crs, int block_dim,
            MatrixPrecision precision = MatrixPrecision::f64);

  /// Assembles from pre-built block structure (the block-aware TI path):
  /// `block_ptr` has block_rows+1 entries, `block_col` is ascending within
  /// each block row, `values` holds one column-major b x b block per entry
  /// of `block_col`.
  BsrMatrix(global_index nrows, global_index ncols, int block_dim,
            aligned_vector<global_index> block_ptr,
            aligned_vector<local_index> block_col,
            aligned_vector<complex_t> values,
            MatrixPrecision precision = MatrixPrecision::f64);

  [[nodiscard]] global_index nrows() const noexcept { return nrows_; }
  [[nodiscard]] global_index ncols() const noexcept { return ncols_; }
  /// Scalar nonzeros of the source matrix (flops are counted on these).
  [[nodiscard]] global_index nnz() const noexcept { return nnz_; }
  [[nodiscard]] int block_dim() const noexcept { return b_; }
  [[nodiscard]] global_index block_rows() const noexcept {
    return nrows_ / b_;
  }
  [[nodiscard]] global_index num_blocks() const noexcept {
    return static_cast<global_index>(block_col_.size());
  }
  /// Stored values including zero fill (= num_blocks * b^2).
  [[nodiscard]] global_index stored_values() const noexcept {
    return num_blocks() * b_ * b_;
  }
  /// nnz / stored_values, <= 1; the beta of DESIGN §5f's Bmin formulas.
  [[nodiscard]] double fill_ratio() const noexcept;

  [[nodiscard]] MatrixPrecision precision() const noexcept {
    return precision_;
  }
  /// 16 when the delta-compressed index stream is active, else 32.
  [[nodiscard]] int index_bits() const noexcept {
    return col_delta16_.empty() ? 32 : 16;
  }

  [[nodiscard]] std::span<const global_index> block_ptr() const noexcept {
    return block_ptr_;
  }
  /// Plain 32-bit block-column indices (always present — ground truth).
  [[nodiscard]] std::span<const local_index> block_col() const noexcept {
    return block_col_;
  }
  /// First block column of each block row (the delta decode seed); empty
  /// when index_bits() == 32.
  [[nodiscard]] std::span<const local_index> first_block_col() const noexcept {
    return first_col_;
  }
  /// Per-block deltas (first block of a row carries delta 0); empty when
  /// index_bits() == 32.
  [[nodiscard]] std::span<const std::uint16_t> col_delta16() const noexcept {
    return col_delta16_;
  }
  /// Per-block occupancy bitmask: bit (jb * b + ib) is set iff the stored
  /// entry is nonzero at the *stored* precision.  Blocks are column-major,
  /// so ascending set bits reproduce the scalar-CRS multiply order; the
  /// kernel iterates set bits instead of testing all b^2 entries for zero,
  /// and explicit fill costs no work at all.
  [[nodiscard]] std::span<const std::uint16_t> block_mask() const noexcept {
    return block_mask_;
  }
  /// Column-major b x b blocks; empty when precision() == f32.
  [[nodiscard]] std::span<const complex_t> values() const noexcept {
    return values_;
  }
  /// Narrowed blocks; empty when precision() == f64.
  [[nodiscard]] std::span<const std::complex<float>> values_f32()
      const noexcept {
    return values_f32_;
  }

  /// Value at (row, col) — zero when outside every stored block.  O(block
  /// row length) lookup; f32 storage is widened back to double.
  [[nodiscard]] complex_t at(global_index row, global_index col) const;

  /// Expands back to CRS, dropping exact zeros (the fill-in).  With f64
  /// precision the surviving values are bitwise identical to the source.
  [[nodiscard]] CrsMatrix to_crs() const;

  /// Bytes streamed per SpMV: values at the stored precision + one block
  /// index at index_bits() per block (+ the 4-byte per-row decode seeds on
  /// the 16-bit path).  The analogue of CrsMatrix::storage_bytes().
  [[nodiscard]] double storage_bytes() const noexcept;

 private:
  void finalize_indices_and_precision();

  global_index nrows_ = 0;
  global_index ncols_ = 0;
  global_index nnz_ = 0;
  int b_ = 4;
  MatrixPrecision precision_ = MatrixPrecision::f64;
  aligned_vector<global_index> block_ptr_;
  aligned_vector<local_index> block_col_;
  aligned_vector<local_index> first_col_;       // 16-bit path only
  aligned_vector<std::uint16_t> col_delta16_;   // 16-bit path only
  aligned_vector<std::uint16_t> block_mask_;    // one occupancy word / block
  aligned_vector<complex_t> values_;            // f64 path
  aligned_vector<std::complex<float>> values_f32_;  // f32 path
};

}  // namespace kpm::sparse
