#include "sparse/matrix_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <vector>

namespace kpm::sparse {

MatrixStats analyze(const CrsMatrix& a, double herm_tol) {
  MatrixStats s;
  s.nrows = a.nrows();
  s.nnz = a.nnz();
  s.avg_nnz_per_row = a.avg_nnz_per_row();
  s.min_row_len = std::numeric_limits<local_index>::max();
  s.max_row_len = 0;
  global_index dominant_rows = 0;
  bool hermitian = a.nrows() == a.ncols();
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    s.min_row_len =
        std::min(s.min_row_len, static_cast<local_index>(cols.size()));
    s.max_row_len =
        std::max(s.max_row_len, static_cast<local_index>(cols.size()));
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      s.bandwidth = std::max(
          s.bandwidth, std::abs(static_cast<global_index>(cols[k]) - i));
      if (cols[k] == i) {
        diag = std::abs(vals[k]);
      } else {
        off += std::abs(vals[k]);
      }
      if (hermitian && std::abs(vals[k] - std::conj(a.at(cols[k], i))) >
                           herm_tol) {
        hermitian = false;
      }
    }
    if (diag >= off) ++dominant_rows;
  }
  if (a.nrows() == 0) s.min_row_len = 0;
  s.diag_dominance = a.nrows() == 0 ? 0.0
                                    : static_cast<double>(dominant_rows) /
                                          static_cast<double>(a.nrows());
  s.hermitian = hermitian;
  s.block_fill2 = block_fill_ratio(a, 2);
  s.block_fill4 = block_fill_ratio(a, 4);
  s.block_fill8 = block_fill_ratio(a, 8);
  return s;
}

double block_fill_ratio(const CrsMatrix& a, int block_dim) {
  if (a.nnz() == 0 || block_dim < 1) return 0.0;
  const global_index nbr = (a.nrows() + block_dim - 1) / block_dim;
  global_index blocks = 0;
  std::vector<local_index> cols;
  for (global_index br = 0; br < nbr; ++br) {
    cols.clear();
    const global_index row_end = std::min(a.nrows(), (br + 1) * block_dim);
    for (global_index i = br * block_dim; i < row_end; ++i) {
      for (const local_index c : a.row_cols(i)) {
        cols.push_back(c / block_dim);
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    blocks += static_cast<global_index>(cols.size());
  }
  return static_cast<double>(a.nnz()) /
         (static_cast<double>(blocks) * block_dim * block_dim);
}

std::ostream& operator<<(std::ostream& os, const MatrixStats& s) {
  return os << "N=" << s.nrows << " nnz=" << s.nnz
            << " nnzr=" << s.avg_nnz_per_row << " rowlen=[" << s.min_row_len
            << "," << s.max_row_len << "]"
            << " bw=" << s.bandwidth << " hermitian=" << (s.hermitian ? "yes" : "no")
            << " blockfill{2,4,8}={" << s.block_fill2 << "," << s.block_fill4
            << "," << s.block_fill8 << "}";
}

}  // namespace kpm::sparse
