#include "sparse/matrix_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

namespace kpm::sparse {

MatrixStats analyze(const CrsMatrix& a, double herm_tol) {
  MatrixStats s;
  s.nrows = a.nrows();
  s.nnz = a.nnz();
  s.avg_nnz_per_row = a.avg_nnz_per_row();
  s.min_row_len = std::numeric_limits<local_index>::max();
  s.max_row_len = 0;
  global_index dominant_rows = 0;
  bool hermitian = a.nrows() == a.ncols();
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    s.min_row_len =
        std::min(s.min_row_len, static_cast<local_index>(cols.size()));
    s.max_row_len =
        std::max(s.max_row_len, static_cast<local_index>(cols.size()));
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      s.bandwidth = std::max(
          s.bandwidth, std::abs(static_cast<global_index>(cols[k]) - i));
      if (cols[k] == i) {
        diag = std::abs(vals[k]);
      } else {
        off += std::abs(vals[k]);
      }
      if (hermitian && std::abs(vals[k] - std::conj(a.at(cols[k], i))) >
                           herm_tol) {
        hermitian = false;
      }
    }
    if (diag >= off) ++dominant_rows;
  }
  if (a.nrows() == 0) s.min_row_len = 0;
  s.diag_dominance = a.nrows() == 0 ? 0.0
                                    : static_cast<double>(dominant_rows) /
                                          static_cast<double>(a.nrows());
  s.hermitian = hermitian;
  return s;
}

std::ostream& operator<<(std::ostream& os, const MatrixStats& s) {
  return os << "N=" << s.nrows << " nnz=" << s.nnz
            << " nnzr=" << s.avg_nnz_per_row << " rowlen=[" << s.min_row_len
            << "," << s.max_row_len << "]"
            << " bw=" << s.bandwidth << " hermitian=" << (s.hermitian ? "yes" : "no");
}

}  // namespace kpm::sparse
