#include "sparse/matrix_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <tuple>
#include <vector>

namespace kpm::sparse {

MatrixStats analyze(const CrsMatrix& a, double herm_tol) {
  MatrixStats s;
  s.nrows = a.nrows();
  s.nnz = a.nnz();
  s.avg_nnz_per_row = a.avg_nnz_per_row();
  s.min_row_len = std::numeric_limits<local_index>::max();
  s.max_row_len = 0;
  global_index dominant_rows = 0;
  bool hermitian = a.nrows() == a.ncols();
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    s.min_row_len =
        std::min(s.min_row_len, static_cast<local_index>(cols.size()));
    s.max_row_len =
        std::max(s.max_row_len, static_cast<local_index>(cols.size()));
    double diag = 0.0;
    double off = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      s.bandwidth = std::max(
          s.bandwidth, std::abs(static_cast<global_index>(cols[k]) - i));
      if (cols[k] == i) {
        diag = std::abs(vals[k]);
      } else {
        off += std::abs(vals[k]);
      }
      if (hermitian && std::abs(vals[k] - std::conj(a.at(cols[k], i))) >
                           herm_tol) {
        hermitian = false;
      }
    }
    if (diag >= off) ++dominant_rows;
  }
  if (a.nrows() == 0) s.min_row_len = 0;
  s.diag_dominance = a.nrows() == 0 ? 0.0
                                    : static_cast<double>(dominant_rows) /
                                          static_cast<double>(a.nrows());
  s.hermitian = hermitian;
  s.block_fill2 = block_fill_ratio(a, 2);
  s.block_fill4 = block_fill_ratio(a, 4);
  s.block_fill8 = block_fill_ratio(a, 8);
  s.stencil_const1 = stencil_expressibility(a, 1);
  s.stencil_const4 = stencil_expressibility(a, 4);
  return s;
}

double block_fill_ratio(const CrsMatrix& a, int block_dim) {
  if (a.nnz() == 0 || block_dim < 1) return 0.0;
  const global_index nbr = (a.nrows() + block_dim - 1) / block_dim;
  global_index blocks = 0;
  std::vector<local_index> cols;
  for (global_index br = 0; br < nbr; ++br) {
    cols.clear();
    const global_index row_end = std::min(a.nrows(), (br + 1) * block_dim);
    for (global_index i = br * block_dim; i < row_end; ++i) {
      for (const local_index c : a.row_cols(i)) {
        cols.push_back(c / block_dim);
      }
    }
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    blocks += static_cast<global_index>(cols.size());
  }
  return static_cast<double>(a.nnz()) /
         (static_cast<double>(blocks) * block_dim * block_dim);
}

double stencil_expressibility(const CrsMatrix& a, int block_dim) {
  if (a.nnz() == 0 || block_dim < 1) return 0.0;
  // One record per entry: the stencil class (site delta, intra-block
  // position) and the value's exact bit pattern.
  struct Entry {
    global_index delta;
    int pos;
    std::uint64_t re;
    std::uint64_t im;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<std::size_t>(a.nnz()));
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const global_index delta =
          static_cast<global_index>(cols[k]) / block_dim - i / block_dim;
      const int pos = static_cast<int>(i % block_dim) * block_dim +
                      static_cast<int>(cols[k] % block_dim);
      entries.push_back({delta, pos, std::bit_cast<std::uint64_t>(vals[k].real()),
                         std::bit_cast<std::uint64_t>(vals[k].imag())});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& x, const Entry& y) {
    return std::tie(x.delta, x.pos, x.re, x.im) <
           std::tie(y.delta, y.pos, y.re, y.im);
  });
  // Within each (delta, pos) class the entries are now grouped by value;
  // the longest run is the modal coefficient's vote.
  global_index matched = 0;
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    std::size_t best = 0;
    while (j < entries.size() && entries[j].delta == entries[i].delta &&
           entries[j].pos == entries[i].pos) {
      std::size_t run = j;
      while (run < entries.size() && entries[run].delta == entries[j].delta &&
             entries[run].pos == entries[j].pos &&
             entries[run].re == entries[j].re &&
             entries[run].im == entries[j].im) {
        ++run;
      }
      best = std::max(best, run - j);
      j = run;
    }
    matched += static_cast<global_index>(best);
    i = j;
  }
  return static_cast<double>(matched) / static_cast<double>(a.nnz());
}

std::ostream& operator<<(std::ostream& os, const MatrixStats& s) {
  return os << "N=" << s.nrows << " nnz=" << s.nnz
            << " nnzr=" << s.avg_nnz_per_row << " rowlen=[" << s.min_row_len
            << "," << s.max_row_len << "]"
            << " bw=" << s.bandwidth << " hermitian=" << (s.hermitian ? "yes" : "no")
            << " blockfill{2,4,8}={" << s.block_fill2 << "," << s.block_fill4
            << "," << s.block_fill8 << "}"
            << " stencilconst{1,4}={" << s.stencil_const1 << ","
            << s.stencil_const4 << "}";
}

}  // namespace kpm::sparse
