#include "sparse/spmv.hpp"

#include <array>
#include <vector>

#include "util/check.hpp"

namespace kpm::sparse {
namespace {

// Fully unrolled SpMMV row kernel for compile-time block width R.  This
// mirrors the paper's code-generator approach (Sec. IV-B): one instantiation
// per block width, accumulators held in registers.
template <int R>
void spmmv_crs_fixed(const CrsMatrix& a, const complex_t* __restrict__ x,
                     complex_t* __restrict__ y) {
  const global_index nrows = a.nrows();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const auto* __restrict__ val = a.values().data();
#pragma omp parallel for schedule(static)
  for (global_index i = 0; i < nrows; ++i) {
    std::array<complex_t, R> acc{};
    for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const complex_t m = val[k];
      const complex_t* __restrict__ xr =
          x + static_cast<std::size_t>(col[k]) * R;
#pragma omp simd
      for (int r = 0; r < R; ++r) acc[r] += m * xr[r];
    }
    complex_t* __restrict__ yr = y + static_cast<std::size_t>(i) * R;
#pragma omp simd
    for (int r = 0; r < R; ++r) yr[r] = acc[r];
  }
}

void spmmv_crs_generic(const CrsMatrix& a, const complex_t* __restrict__ x,
                       complex_t* __restrict__ y, int width) {
  const global_index nrows = a.nrows();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const auto* __restrict__ val = a.values().data();
#pragma omp parallel
  {
    std::vector<complex_t> acc(static_cast<std::size_t>(width));
#pragma omp for schedule(static)
    for (global_index i = 0; i < nrows; ++i) {
      std::fill(acc.begin(), acc.end(), complex_t{});
      for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const complex_t m = val[k];
        const complex_t* __restrict__ xr =
            x + static_cast<std::size_t>(col[k]) * width;
#pragma omp simd
        for (int r = 0; r < width; ++r) acc[r] += m * xr[r];
      }
      complex_t* __restrict__ yr = y + static_cast<std::size_t>(i) * width;
#pragma omp simd
      for (int r = 0; r < width; ++r) yr[r] = acc[r];
    }
  }
}

}  // namespace

void spmv(const CrsMatrix& a, std::span<const complex_t> x,
          std::span<complex_t> y) {
  // y may be halo-extended (>= nrows) in distributed use; only the first
  // nrows entries are written.
  require(x.size() == static_cast<std::size_t>(a.ncols()) &&
              y.size() >= static_cast<std::size_t>(a.nrows()),
          "spmv(CRS): size mismatch");
  const global_index nrows = a.nrows();
  const auto* __restrict__ row_ptr = a.row_ptr().data();
  const auto* __restrict__ col = a.col_idx().data();
  const auto* __restrict__ val = a.values().data();
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for schedule(static)
  for (global_index i = 0; i < nrows; ++i) {
    complex_t acc{};
    for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc += val[k] * xp[col[k]];
    }
    yp[i] = acc;
  }
}

void spmv(const SellMatrix& a, std::span<const complex_t> x,
          std::span<complex_t> y) {
  require(x.size() == static_cast<std::size_t>(a.ncols()) &&
              y.size() == static_cast<std::size_t>(a.nrows()),
          "spmv(SELL): size mismatch");
  const global_index nchunks = a.num_chunks();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const auto* __restrict__ val = a.values().data();
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for schedule(static)
  for (global_index c = 0; c < nchunks; ++c) {
    const global_index base = cptr[c];
    const int lanes =
        static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
    for (int lane = 0; lane < lanes; ++lane) yp[c * chunk + lane] = complex_t{};
    for (local_index j = 0; j < clen[c]; ++j) {
      const global_index off = base + static_cast<global_index>(j) * chunk;
#pragma omp simd
      for (int lane = 0; lane < lanes; ++lane) {
        yp[c * chunk + lane] += val[off + lane] * xp[col[off + lane]];
      }
    }
  }
}

void spmmv(const CrsMatrix& a, const blas::BlockVector& x,
           blas::BlockVector& y) {
  require(x.rows() == a.ncols() && y.rows() >= a.nrows() &&
              x.width() == y.width(),
          "spmmv(CRS): shape mismatch");
  require(x.layout() == blas::Layout::row_major &&
              y.layout() == blas::Layout::row_major,
          "spmmv(CRS): row-major block vectors required");
  switch (x.width()) {
    case 1: spmmv_crs_fixed<1>(a, x.data(), y.data()); return;
    case 2: spmmv_crs_fixed<2>(a, x.data(), y.data()); return;
    case 4: spmmv_crs_fixed<4>(a, x.data(), y.data()); return;
    case 8: spmmv_crs_fixed<8>(a, x.data(), y.data()); return;
    case 16: spmmv_crs_fixed<16>(a, x.data(), y.data()); return;
    case 32: spmmv_crs_fixed<32>(a, x.data(), y.data()); return;
    case 64: spmmv_crs_fixed<64>(a, x.data(), y.data()); return;
    default: spmmv_crs_generic(a, x.data(), y.data(), x.width()); return;
  }
}

void spmmv(const SellMatrix& a, const blas::BlockVector& x,
           blas::BlockVector& y) {
  require(x.rows() == a.ncols() && y.rows() == a.nrows() &&
              x.width() == y.width(),
          "spmmv(SELL): shape mismatch");
  require(x.layout() == blas::Layout::row_major &&
              y.layout() == blas::Layout::row_major,
          "spmmv(SELL): row-major block vectors required");
  const global_index nchunks = a.num_chunks();
  const int chunk = a.chunk_height();
  const global_index nrows = a.nrows();
  const int width = x.width();
  const auto* __restrict__ cptr = a.chunk_ptr().data();
  const auto* __restrict__ clen = a.chunk_len().data();
  const auto* __restrict__ col = a.col_idx().data();
  const auto* __restrict__ val = a.values().data();
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for schedule(static)
  for (global_index c = 0; c < nchunks; ++c) {
    const global_index base = cptr[c];
    const int lanes =
        static_cast<int>(std::min<global_index>(chunk, nrows - c * chunk));
    for (int lane = 0; lane < lanes; ++lane) {
      complex_t* __restrict__ yr =
          yp + static_cast<std::size_t>(c * chunk + lane) * width;
      for (int r = 0; r < width; ++r) yr[r] = complex_t{};
    }
    for (local_index j = 0; j < clen[c]; ++j) {
      const global_index off = base + static_cast<global_index>(j) * chunk;
      for (int lane = 0; lane < lanes; ++lane) {
        const complex_t m = val[off + lane];
        const complex_t* __restrict__ xr =
            xp + static_cast<std::size_t>(col[off + lane]) * width;
        complex_t* __restrict__ yr =
            yp + static_cast<std::size_t>(c * chunk + lane) * width;
#pragma omp simd
        for (int r = 0; r < width; ++r) yr[r] += m * xr[r];
      }
    }
  }
}

void spmmv_colmajor(const CrsMatrix& a, const blas::BlockVector& x,
                    blas::BlockVector& y) {
  require(x.rows() == a.ncols() && y.rows() == a.nrows() &&
              x.width() == y.width(),
          "spmmv_colmajor: shape mismatch");
  require(x.layout() == blas::Layout::col_major &&
              y.layout() == blas::Layout::col_major,
          "spmmv_colmajor: column-major block vectors required");
  // One SpMV per column — the access pattern the paper's row-major layout
  // is designed to avoid (matrix read R times instead of once).
  const int width = x.width();
  const std::size_t stride = static_cast<std::size_t>(x.rows());
  for (int r = 0; r < width; ++r) {
    spmv(a, std::span<const complex_t>(x.data() + r * stride, stride),
         std::span<complex_t>(y.data() + r * stride, stride));
  }
}

}  // namespace kpm::sparse
