// Structural statistics of sparse matrices, used by the performance model
// (Nnzr enters the code balance) and by the benchmark reports.
#pragma once

#include <iosfwd>

#include "sparse/crs.hpp"

namespace kpm::sparse {

struct MatrixStats {
  global_index nrows = 0;
  global_index nnz = 0;
  double avg_nnz_per_row = 0.0;  ///< Nnzr in the paper
  local_index min_row_len = 0;
  local_index max_row_len = 0;
  global_index bandwidth = 0;    ///< max |i - j| over stored entries
  double diag_dominance = 0.0;   ///< fraction of rows with |a_ii| >= sum off-diag
  bool hermitian = false;
};

[[nodiscard]] MatrixStats analyze(const CrsMatrix& a, double herm_tol = 1e-12);

std::ostream& operator<<(std::ostream& os, const MatrixStats& s);

}  // namespace kpm::sparse
