// Structural statistics of sparse matrices, used by the performance model
// (Nnzr enters the code balance) and by the benchmark reports.
#pragma once

#include <iosfwd>

#include "sparse/crs.hpp"

namespace kpm::sparse {

struct MatrixStats {
  global_index nrows = 0;
  global_index nnz = 0;
  double avg_nnz_per_row = 0.0;  ///< Nnzr in the paper
  local_index min_row_len = 0;
  local_index max_row_len = 0;
  global_index bandwidth = 0;    ///< max |i - j| over stored entries
  double diag_dominance = 0.0;   ///< fraction of rows with |a_ii| >= sum off-diag
  bool hermitian = false;
  /// Block-structure detection: nnz / (occupied b x b blocks * b^2) for
  /// b = 2, 4, 8 — the beta of the per-format Bmin formulas (DESIGN §5f).
  /// 1.0 means perfectly dense blocks (BSR stores no fill); low values mean
  /// a block format would mostly stream zeros.  Benches report these so the
  /// record explains why a block format was or wasn't profitable.
  double block_fill2 = 0.0;
  double block_fill4 = 0.0;
  double block_fill8 = 0.0;
  /// Stencil expressibility (DESIGN §5h): fraction of stored entries whose
  /// value is bitwise the modal value of their (site delta, intra-block
  /// position) class, on the scalar and the 4 x 4 block grid.  1.0 means a
  /// pure constant-coefficient stencil (a matrix-free apply stores nothing);
  /// the deficit is per-entry data that must stream (e.g. a disordered
  /// diagonal contributes ~1/Nnzr).  Benches report these so the record
  /// shows why the matrix-free format applies (or doesn't).
  double stencil_const1 = 0.0;
  double stencil_const4 = 0.0;
};

[[nodiscard]] MatrixStats analyze(const CrsMatrix& a, double herm_tol = 1e-12);

/// nnz / (occupied blocks * b^2) on the ceil(n/b) block grid; 0 for an
/// empty matrix.  O(nnz log nnz_row) — cheap enough for bench headers.
[[nodiscard]] double block_fill_ratio(const CrsMatrix& a, int block_dim);

/// Constant-coefficient fraction on the b x b block grid: entries are
/// classed by (block-column minus block-row, position inside the block) —
/// the coordinates a StencilOperator::Term assigns — and each class votes
/// for its most common bit pattern.  Returns matched entries / nnz; 0 for
/// an empty matrix.  O(nnz log nnz).
[[nodiscard]] double stencil_expressibility(const CrsMatrix& a, int block_dim);

std::ostream& operator<<(std::ostream& os, const MatrixStats& s);

}  // namespace kpm::sparse
