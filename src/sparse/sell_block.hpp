// SELL-C-sigma over block rows (the SELL lineage of Kreutzer et al. applied
// to the b x b site blocks of BSR).
//
// Block rows are grouped into chunks of C; within a sorting window of sigma
// block rows, block rows are ordered by descending block count.  A chunk
// stores its blocks column-major at block granularity: chunk element
// (j, lane) holds the j-th block of the lane-th block row, so the kernel
// walks lanes in lockstep exactly like scalar SELL walks rows.  Padding
// elements repeat the preceding block column (delta 0) with all-zero
// values, so the decode and the FMAs stay branch-free.
//
// The block-row sorting is a symmetric permutation at block granularity;
// vectors cross orderings with permute()/unpermute(), which move whole
// scalar b-row groups.  Value precision and the 16-bit delta index stream
// are inherited from the source BsrMatrix (see bsr.hpp).
#pragma once

#include <complex>
#include <cstdint>
#include <span>

#include "blas/block_vector.hpp"
#include "sparse/bsr.hpp"
#include "sparse/crs.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace kpm::sparse {

class SellBlockMatrix {
 public:
  SellBlockMatrix() = default;

  /// Builds SELL-C-sigma over the block rows of `bsr`.  `sigma` must be a
  /// multiple of `chunk` (or 1 for no sorting); both count block rows.
  SellBlockMatrix(const BsrMatrix& bsr, int chunk, int sigma);

  /// Convenience: CRS -> BSR -> SELL-block in one step.
  SellBlockMatrix(const CrsMatrix& crs, int block_dim, int chunk, int sigma,
                  MatrixPrecision precision = MatrixPrecision::f64);

  [[nodiscard]] global_index nrows() const noexcept { return nrows_; }
  [[nodiscard]] global_index ncols() const noexcept { return ncols_; }
  [[nodiscard]] global_index nnz() const noexcept { return nnz_; }
  [[nodiscard]] int block_dim() const noexcept { return b_; }
  [[nodiscard]] int chunk_height() const noexcept { return chunk_; }
  [[nodiscard]] int sigma() const noexcept { return sigma_; }
  [[nodiscard]] global_index block_rows() const noexcept {
    return nrows_ / b_;
  }
  [[nodiscard]] global_index num_chunks() const noexcept {
    return static_cast<global_index>(chunk_len_.size());
  }
  /// Stored blocks including padding.
  [[nodiscard]] global_index padded_blocks() const noexcept {
    return static_cast<global_index>(block_col_.size());
  }
  /// Stored values including zero fill and chunk padding.
  [[nodiscard]] global_index stored_values() const noexcept {
    return padded_blocks() * b_ * b_;
  }
  /// nnz / stored_values (block fill and chunk padding combined).
  [[nodiscard]] double fill_ratio() const noexcept;

  [[nodiscard]] MatrixPrecision precision() const noexcept {
    return precision_;
  }
  [[nodiscard]] int index_bits() const noexcept {
    return col_delta16_.empty() ? 32 : 16;
  }

  /// Block offset of each chunk (units of blocks).
  [[nodiscard]] std::span<const global_index> chunk_ptr() const noexcept {
    return chunk_ptr_;
  }
  /// Max blocks per block row within each chunk.
  [[nodiscard]] std::span<const local_index> chunk_len() const noexcept {
    return chunk_len_;
  }
  /// Block-column index per chunk element (permuted block-row order).
  [[nodiscard]] std::span<const local_index> block_col() const noexcept {
    return block_col_;
  }
  /// Delta decode seed per (permuted) block row; empty on the 32-bit path.
  [[nodiscard]] std::span<const local_index> first_block_col() const noexcept {
    return first_col_;
  }
  [[nodiscard]] std::span<const std::uint16_t> col_delta16() const noexcept {
    return col_delta16_;
  }
  /// Per-block occupancy bitmask (see BsrMatrix::block_mask); chunk padding
  /// blocks carry mask 0 and therefore cost the kernel nothing.
  [[nodiscard]] std::span<const std::uint16_t> block_mask() const noexcept {
    return block_mask_;
  }
  /// Column-major b x b blocks per chunk element; empty when f32.
  [[nodiscard]] std::span<const complex_t> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<const std::complex<float>> values_f32()
      const noexcept {
    return values_f32_;
  }

  /// perm()[new_block_row] == old_block_row (and the inverse).
  [[nodiscard]] std::span<const global_index> perm() const noexcept {
    return perm_;
  }
  [[nodiscard]] std::span<const global_index> inverse_perm() const noexcept {
    return inv_perm_;
  }

  /// x_perm[new] = x[perm[new]] at scalar granularity (whole b-row groups).
  void permute(std::span<const complex_t> x, std::span<complex_t> x_perm) const;
  void unpermute(std::span<const complex_t> x_perm,
                 std::span<complex_t> x) const;
  void permute(const blas::BlockVector& x, blas::BlockVector& x_perm) const;
  void unpermute(const blas::BlockVector& x_perm, blas::BlockVector& x) const;

  /// Expands back to CRS in the *original* block-row ordering, dropping
  /// padding and exact-zero fill; f64 values survive bitwise.
  [[nodiscard]] CrsMatrix to_crs() const;

  /// Bytes streamed per SpMV (values + block indices + decode seeds).
  [[nodiscard]] double storage_bytes() const noexcept;

 private:
  global_index nrows_ = 0;
  global_index ncols_ = 0;
  global_index nnz_ = 0;
  int b_ = 4;
  int chunk_ = 1;
  int sigma_ = 1;
  MatrixPrecision precision_ = MatrixPrecision::f64;
  aligned_vector<global_index> chunk_ptr_;
  aligned_vector<local_index> chunk_len_;
  aligned_vector<local_index> block_col_;
  aligned_vector<local_index> first_col_;
  aligned_vector<std::uint16_t> col_delta16_;
  aligned_vector<std::uint16_t> block_mask_;
  aligned_vector<complex_t> values_;
  aligned_vector<std::complex<float>> values_f32_;
  aligned_vector<global_index> perm_;
  aligned_vector<global_index> inv_perm_;
};

}  // namespace kpm::sparse
