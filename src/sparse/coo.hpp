// Coordinate-format assembly buffer.
//
// Matrix generators (src/physics) emit (row, col, value) triplets; the
// builder sorts them, merges duplicates, drops explicit zeros and converts
// to CRS / SELL-C-sigma.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace kpm::sparse {

struct Triplet {
  global_index row;
  global_index col;
  complex_t value;
};

class CooMatrix {
 public:
  CooMatrix(global_index nrows, global_index ncols);

  void add(global_index row, global_index col, complex_t value);
  /// add(row, col, v) and add(col, row, conj(v)) in one call.
  void add_hermitian_pair(global_index row, global_index col, complex_t value);

  /// Sorts by (row, col), merges duplicate coordinates by summation and
  /// removes entries whose merged magnitude is below `drop_tol`.
  void compress(double drop_tol = 0.0);

  [[nodiscard]] global_index nrows() const noexcept { return nrows_; }
  [[nodiscard]] global_index ncols() const noexcept { return ncols_; }
  [[nodiscard]] const std::vector<Triplet>& triplets() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }

  /// True if compress() has been called and the matrix equals its conjugate
  /// transpose within `tol`.
  [[nodiscard]] bool is_hermitian(double tol = 1e-12) const;

 private:
  global_index nrows_;
  global_index ncols_;
  std::vector<Triplet> entries_;
  bool compressed_ = false;
};

}  // namespace kpm::sparse
