// Plain sparse matrix (block) vector multiplication kernels.
//
// These kernels implement the un-augmented operations used by the naive
// KPM-DOS pipeline (paper Fig. 3) and by the kernel-level benchmarks.  The
// SpMMV variants operate on row-major (interleaved) block vectors so the
// innermost loop streams the R right-hand sides with unit stride — the
// vectorization strategy of paper Sec. IV-A.
#pragma once

#include <span>

#include "blas/block_vector.hpp"
#include "sparse/crs.hpp"
#include "sparse/sell.hpp"
#include "util/types.hpp"

namespace kpm::sparse {

/// y = A x  (CRS).
void spmv(const CrsMatrix& a, std::span<const complex_t> x,
          std::span<complex_t> y);

/// y = A x  (SELL-C-sigma, permuted vectors).
void spmv(const SellMatrix& a, std::span<const complex_t> x,
          std::span<complex_t> y);

/// Y = A X on row-major block vectors (CRS).
void spmmv(const CrsMatrix& a, const blas::BlockVector& x,
           blas::BlockVector& y);

/// Y = A X on row-major block vectors (SELL-C-sigma, permuted vectors).
void spmmv(const SellMatrix& a, const blas::BlockVector& x,
           blas::BlockVector& y);

/// Column-major SpMMV reference (layout ablation; deliberately strided).
void spmmv_colmajor(const CrsMatrix& a, const blas::BlockVector& x,
                    blas::BlockVector& y);

}  // namespace kpm::sparse
