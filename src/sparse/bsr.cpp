#include "sparse/bsr.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::sparse {

namespace {

constexpr bool valid_block_dim(int b) { return b == 2 || b == 4; }

/// Exact-zero test on the parts: fill-in is written as {+0.0, +0.0}, so an
/// assembled value only collides with fill if both parts are exactly zero.
inline bool is_exact_zero(complex_t v) noexcept {
  return v.real() == 0.0 && v.imag() == 0.0;
}

}  // namespace

const char* precision_name(MatrixPrecision p) noexcept {
  switch (p) {
    case MatrixPrecision::f64: return "f64";
    case MatrixPrecision::f32: return "f32";
  }
  return "unknown";
}

BsrMatrix::BsrMatrix(const CrsMatrix& crs, int block_dim,
                     MatrixPrecision precision)
    : nrows_(crs.nrows()),
      ncols_(crs.ncols()),
      nnz_(crs.nnz()),
      b_(block_dim),
      precision_(precision) {
  require(valid_block_dim(block_dim), "BsrMatrix: block_dim must be 2 or 4");
  require(nrows_ % b_ == 0 && ncols_ % b_ == 0,
          "BsrMatrix: matrix dimensions must be divisible by block_dim");
  const global_index nbr = nrows_ / b_;
  block_ptr_.assign(static_cast<std::size_t>(nbr) + 1, 0);

  // Pass 1: distinct block columns per block row (rows are sorted, so the
  // merge across the b scalar rows of a block row is a b-way union).
  const auto row_ptr = crs.row_ptr();
  const auto col = crs.col_idx();
  std::vector<std::vector<local_index>> row_blocks(
      static_cast<std::size_t>(nbr));
#pragma omp parallel for schedule(static)
  for (global_index br = 0; br < nbr; ++br) {
    auto& blocks = row_blocks[static_cast<std::size_t>(br)];
    for (int ib = 0; ib < b_; ++ib) {
      const global_index i = br * b_ + ib;
      for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        blocks.push_back(col[k] / b_);
      }
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    block_ptr_[static_cast<std::size_t>(br) + 1] =
        static_cast<global_index>(blocks.size());
  }
  for (global_index br = 0; br < nbr; ++br) {
    block_ptr_[static_cast<std::size_t>(br) + 1] +=
        block_ptr_[static_cast<std::size_t>(br)];
  }

  // Pass 2: scatter values into dense column-major blocks.
  const global_index nblocks = block_ptr_[static_cast<std::size_t>(nbr)];
  block_col_.assign(static_cast<std::size_t>(nblocks), 0);
  values_.assign(static_cast<std::size_t>(nblocks) * b_ * b_, complex_t{});
  const auto vals = crs.values();
#pragma omp parallel for schedule(static)
  for (global_index br = 0; br < nbr; ++br) {
    const auto& blocks = row_blocks[static_cast<std::size_t>(br)];
    const global_index base = block_ptr_[static_cast<std::size_t>(br)];
    for (std::size_t j = 0; j < blocks.size(); ++j) {
      block_col_[static_cast<std::size_t>(base) + j] = blocks[j];
    }
    for (int ib = 0; ib < b_; ++ib) {
      const global_index i = br * b_ + ib;
      for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        const local_index bc = col[k] / b_;
        const auto it = std::lower_bound(blocks.begin(), blocks.end(), bc);
        const global_index blk = base + (it - blocks.begin());
        const int jb = static_cast<int>(col[k] % b_);
        values_[static_cast<std::size_t>(blk) * b_ * b_ + jb * b_ + ib] =
            vals[k];
      }
    }
  }
  finalize_indices_and_precision();
}

BsrMatrix::BsrMatrix(global_index nrows, global_index ncols, int block_dim,
                     aligned_vector<global_index> block_ptr,
                     aligned_vector<local_index> block_col,
                     aligned_vector<complex_t> values,
                     MatrixPrecision precision)
    : nrows_(nrows),
      ncols_(ncols),
      b_(block_dim),
      precision_(precision),
      block_ptr_(std::move(block_ptr)),
      block_col_(std::move(block_col)),
      values_(std::move(values)) {
  require(valid_block_dim(block_dim), "BsrMatrix: block_dim must be 2 or 4");
  require(nrows_ % b_ == 0 && ncols_ % b_ == 0,
          "BsrMatrix: matrix dimensions must be divisible by block_dim");
  const global_index nbr = nrows_ / b_;
  require(static_cast<global_index>(block_ptr_.size()) == nbr + 1 &&
              block_ptr_.front() == 0 &&
              block_ptr_.back() ==
                  static_cast<global_index>(block_col_.size()),
          "BsrMatrix: malformed block_ptr");
  require(values_.size() == block_col_.size() * static_cast<std::size_t>(b_) *
                                static_cast<std::size_t>(b_),
          "BsrMatrix: values size must be num_blocks * b^2");
  const global_index nbc = ncols_ / b_;
  for (global_index br = 0; br < nbr; ++br) {
    local_index prev = -1;
    for (global_index k = block_ptr_[static_cast<std::size_t>(br)];
         k < block_ptr_[static_cast<std::size_t>(br) + 1]; ++k) {
      const local_index bc = block_col_[static_cast<std::size_t>(k)];
      require(bc > prev && bc < nbc,
              "BsrMatrix: block columns must ascend and stay in bounds");
      prev = bc;
    }
  }
  nnz_ = 0;
  for (const complex_t v : values_) {
    if (!is_exact_zero(v)) ++nnz_;
  }
  finalize_indices_and_precision();
}

void BsrMatrix::finalize_indices_and_precision() {
  // 16-bit delta index stream: the first block of each row seeds the decode
  // from first_col_, every block stores the (non-negative) delta to its
  // predecessor.  One oversized gap anywhere disables the stream for the
  // whole matrix — the kernel wants a single decode loop, not a per-row mix.
  const global_index nbr = nrows_ / b_;
  bool fits = true;
  first_col_.assign(static_cast<std::size_t>(nbr), 0);
  col_delta16_.assign(block_col_.size(), 0);
  for (global_index br = 0; br < nbr && fits; ++br) {
    const global_index lo = block_ptr_[static_cast<std::size_t>(br)];
    const global_index hi = block_ptr_[static_cast<std::size_t>(br) + 1];
    if (lo == hi) continue;
    first_col_[static_cast<std::size_t>(br)] =
        block_col_[static_cast<std::size_t>(lo)];
    for (global_index k = lo + 1; k < hi; ++k) {
      const local_index d = block_col_[static_cast<std::size_t>(k)] -
                            block_col_[static_cast<std::size_t>(k) - 1];
      if (d > 65535) {
        fits = false;
        break;
      }
      col_delta16_[static_cast<std::size_t>(k)] =
          static_cast<std::uint16_t>(d);
    }
  }
  if (!fits) {
    first_col_.clear();
    first_col_.shrink_to_fit();
    col_delta16_.clear();
    col_delta16_.shrink_to_fit();
  }
  if (precision_ == MatrixPrecision::f32) {
    values_f32_.resize(values_.size());
    for (std::size_t k = 0; k < values_.size(); ++k) {
      values_f32_[k] = {static_cast<float>(values_[k].real()),
                        static_cast<float>(values_[k].imag())};
    }
    values_.clear();
    values_.shrink_to_fit();
  }
  // Occupancy masks at the *stored* precision: a double that narrows to
  // +-0.0f is fill as far as the f32 kernel is concerned, so the mask is
  // built after narrowing and mask-driven iteration touches exactly the
  // entries a per-entry zero test on the stored values would keep.
  const std::size_t bb = static_cast<std::size_t>(b_) * b_;
  block_mask_.assign(block_col_.size(), 0);
  for (std::size_t blk = 0; blk < block_col_.size(); ++blk) {
    std::uint16_t m = 0;
    for (std::size_t e = 0; e < bb; ++e) {
      const bool nz =
          precision_ == MatrixPrecision::f32
              ? values_f32_[blk * bb + e] != std::complex<float>{}
              : !is_exact_zero(values_[blk * bb + e]);
      if (nz) m |= static_cast<std::uint16_t>(1u << e);
    }
    block_mask_[blk] = m;
  }
}

double BsrMatrix::fill_ratio() const noexcept {
  const global_index stored = stored_values();
  return stored > 0 ? static_cast<double>(nnz_) / static_cast<double>(stored)
                    : 1.0;
}

complex_t BsrMatrix::at(global_index row, global_index col) const {
  require(row >= 0 && row < nrows_ && col >= 0 && col < ncols_,
          "BsrMatrix::at: index out of range");
  const global_index br = row / b_;
  const local_index bc = static_cast<local_index>(col / b_);
  const global_index lo = block_ptr_[static_cast<std::size_t>(br)];
  const global_index hi = block_ptr_[static_cast<std::size_t>(br) + 1];
  const auto* begin = block_col_.data() + lo;
  const auto* end = block_col_.data() + hi;
  const auto* it = std::lower_bound(begin, end, bc);
  if (it == end || *it != bc) return {};
  const std::size_t blk = static_cast<std::size_t>(lo + (it - begin));
  const std::size_t off = blk * b_ * b_ +
                          static_cast<std::size_t>(col % b_) * b_ +
                          static_cast<std::size_t>(row % b_);
  if (precision_ == MatrixPrecision::f64) return values_[off];
  return {static_cast<double>(values_f32_[off].real()),
          static_cast<double>(values_f32_[off].imag())};
}

CrsMatrix BsrMatrix::to_crs() const {
  CooMatrix coo(nrows_, ncols_);
  const global_index nbr = nrows_ / b_;
  for (global_index br = 0; br < nbr; ++br) {
    for (global_index k = block_ptr_[static_cast<std::size_t>(br)];
         k < block_ptr_[static_cast<std::size_t>(br) + 1]; ++k) {
      const global_index col0 =
          static_cast<global_index>(block_col_[static_cast<std::size_t>(k)]) *
          b_;
      for (int jb = 0; jb < b_; ++jb) {
        for (int ib = 0; ib < b_; ++ib) {
          const std::size_t off = static_cast<std::size_t>(k) * b_ * b_ +
                                  static_cast<std::size_t>(jb) * b_ + ib;
          const complex_t v =
              precision_ == MatrixPrecision::f64
                  ? values_[off]
                  : complex_t{
                        static_cast<double>(values_f32_[off].real()),
                        static_cast<double>(values_f32_[off].imag())};
          if (!is_exact_zero(v)) coo.add(br * b_ + ib, col0 + jb, v);
        }
      }
    }
  }
  coo.compress();
  return CrsMatrix(coo);
}

double BsrMatrix::storage_bytes() const noexcept {
  const double nblocks = static_cast<double>(num_blocks());
  const double value_bytes =
      precision_ == MatrixPrecision::f64 ? 16.0 : 8.0;
  // Per block: the values, one index at index_bits(), and the 2-byte
  // occupancy mask the kernel streams to skip the zero fill.
  double bytes = static_cast<double>(stored_values()) * value_bytes +
                 nblocks * (index_bits() / 8.0 + 2.0);
  if (index_bits() == 16) {
    bytes += static_cast<double>(block_rows()) * sizeof(local_index);
  }
  return bytes;
}

}  // namespace kpm::sparse
