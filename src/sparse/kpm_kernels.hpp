// Augmented (fused) KPM kernels — the paper's central contribution.
//
// Optimization stage 1, aug_spmv() (paper Fig. 4), fuses the whole inner
// iteration into one sweep:
//
//     |w>  <-  alpha * A|v>  +  beta * |v>  +  gamma * |w>
//     eta_even  = <v|v>          (computed on the fly)
//     eta_odd   = <w_new|v>      (computed on the fly)
//
// With alpha = 2a, beta = -2ab, gamma = -1 this is exactly
// |w> = 2a(H - b1)|v> - |w> of the Chebyshev recurrence; the generic scalars
// also cover the start-up step |v1> = a(H - b1)|v0> (gamma = 0).
//
// Optimization stage 2, aug_spmmv() (paper Fig. 5), is the same operation on
// row-major block vectors of width R, turning the R loosely-coupled outer
// iterations into a single matrix read per Chebyshev step.
//
// Passing empty dot spans skips the on-the-fly reductions — that is the
// "augmented SpMMV without dot products" kernel of paper Fig. 10(b).
//
// Kernel dispatch.  Every block kernel (CRS and SELL alike) is routed
// through one width-dispatch layer: for R in {1, 2, 4, 8, 16, 32, 64} a
// fixed-width instantiation with stack-resident accumulators and fully
// unrolled SIMD lanes is selected, any other width falls back to a generic
// runtime-width body.  The inner complex multiply-accumulate operates on the
// interleaved (re, im) doubles of the complex storage directly, so the
// compiler emits plain FMA arithmetic instead of library complex-multiply
// calls.  See DESIGN.md "Kernel dispatch & reduction strategy".
//
// Cache blocking (DESIGN.md §5c).  Widths above the register budget execute
// as several column-tile passes of a fixed sub-width (e.g. 32 = 2 x 16) so
// the accumulators stay in registers; the tile loop sits *inside* the row
// loop, so each matrix row is re-read from L1 rather than re-streamed from
// DRAM.  Each thread additionally walks its static row range band by band
// (TileConfig::band_rows) to keep the v/w bands of one band resident in
// cache across tile passes, and can write the output block vector with
// non-temporal streaming stores (TileConfig::nt_stores) when w will not be
// re-read before leaving the cache anyway.  All of these knobs preserve the
// bitwise-parity contract below, so the autotuner may flip them freely.
//
// Determinism.  All on-the-fly dot reductions use cache-line-padded
// per-thread partial buffers that are combined in ascending thread order —
// no locks, no atomics, no `omp critical`.  The block kernels partition rows
// with an explicit static split (util/schedule.hpp) rather than `omp for`,
// so the row->thread assignment — and therefore every moment bit — is
// independent of tiling, banding, NT stores, and the OpenMP implementation.
// At a fixed thread count the moments are bitwise reproducible run-to-run.
#pragma once

#include <span>

#include "blas/block_vector.hpp"
#include "sparse/bsr.hpp"
#include "sparse/crs.hpp"
#include "sparse/sell.hpp"
#include "sparse/sell_block.hpp"
#include "sparse/stencil.hpp"
#include "util/schedule.hpp"
#include "util/types.hpp"

namespace kpm::sparse {

/// Scalars of the augmented operation w <- alpha*A*v + beta*v + gamma*w.
struct AugScalars {
  complex_t alpha{1.0, 0.0};
  complex_t beta{0.0, 0.0};
  complex_t gamma{0.0, 0.0};

  /// Chebyshev recurrence step for H~ = a(H - b1): w = 2a(H-b1)v - w.
  [[nodiscard]] static AugScalars recurrence(double a, double b) {
    return {{2.0 * a, 0.0}, {-2.0 * a * b, 0.0}, {-1.0, 0.0}};
  }
  /// Start-up step v1 = a(H - b1)v0.
  [[nodiscard]] static AugScalars startup(double a, double b) {
    return {{a, 0.0}, {-a * b, 0.0}, {0.0, 0.0}};
  }
};

/// Which body the width-dispatch layer selects for the block kernels.
///
///  - auto_dispatch: fixed-width instantiation when the block width is in
///    the dispatch table {1,2,4,8,16,32,64}, generic body otherwise.
///  - force_generic: always the runtime-width body (autotuner probes and
///    parity tests).
///  - force_fixed:   fixed-width body when tabulated, generic fallback
///    otherwise (i.e. auto_dispatch — the name records intent at call sites).
enum class KernelVariant { auto_dispatch, force_generic, force_fixed };

/// Process-wide variant override consulted on every block-kernel call.
/// Intended for the autotuner's probe phase and for tests; not meant to be
/// flipped while kernels are in flight on other threads (stores are atomic,
/// so concurrent same-value stores during collective probing are safe).
void set_kernel_variant(KernelVariant v) noexcept;
[[nodiscard]] KernelVariant kernel_variant() noexcept;
[[nodiscard]] const char* kernel_variant_name(KernelVariant v) noexcept;

/// True if `width` has a fixed-width instantiation in the dispatch table.
[[nodiscard]] bool has_fixed_width(int width) noexcept;

/// Cache-blocking configuration of the block kernels (process-wide, like the
/// KernelVariant override; installed by the tile autotuner or tests).
struct TileConfig {
  /// Column-tile sub-width: widths above this execute as multiple register-
  /// resident passes per row.  0 = automatic policy (tile wide blocks at the
  /// default sub-width), negative = force a single untiled pass.
  int tile_width = 0;
  /// Row-band height each thread walks at a time within its static range so
  /// one band of v/w stays cache-resident across the tile passes; 0 = the
  /// whole per-thread range (no banding).
  global_index band_rows = 0;
  /// Write w with non-temporal streaming stores (falls back to plain stores
  /// when not compiled in; bitwise-identical either way).
  bool nt_stores = false;

  bool operator==(const TileConfig&) const = default;
};

/// Process-wide tile configuration consulted on every block-kernel call.
/// Same caveat as set_kernel_variant(): not meant to be flipped while
/// kernels are in flight on other threads.
void set_tile_config(const TileConfig& c) noexcept;
[[nodiscard]] TileConfig tile_config() noexcept;

/// Sub-width the dispatch layer will actually tile `width` into under the
/// current variant + tile configuration (== width when the sweep runs as a
/// single untiled pass).
[[nodiscard]] int effective_tile_width(int width) noexcept;

/// True when non-temporal streaming stores are compiled in (x86 SSE2);
/// otherwise TileConfig::nt_stores silently uses the plain-store fallback.
[[nodiscard]] bool nt_stores_supported() noexcept;

/// Stage-1 fused kernel on a single vector (CRS).  `dot_vv`/`dot_wv`
/// receive <v|v> and <w_new|v>; pass nullptr to skip either reduction
/// (with both nullptr the reduction code is compiled out entirely).
void aug_spmv(const CrsMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv);

/// Stage-1 fused kernel (SELL-C-sigma, permuted vectors).
void aug_spmv(const SellMatrix& a, const AugScalars& s,
              std::span<const complex_t> v, std::span<complex_t> w,
              complex_t* dot_vv, complex_t* dot_wv);

// Dot-output contract of the block kernels: the full-sweep aug_spmmv()
// overloads OVERWRITE `dot_vv`/`dot_wv` (they are zero-filled before the
// sweep), whereas the partial-sweep aug_spmmv_rows() ACCUMULATES into them
// so that the split interior/boundary calls of an overlapped halo exchange
// compose — zero the spans before the first partial call of a sweep.  The
// dot spans must not alias the v/w storage (checked).

/// Stage-2 fused block kernel (CRS).  `dot_vv`/`dot_wv` must be empty (skip
/// the on-the-fly dots) or hold one entry per block column; non-empty spans
/// are overwritten with the dots of this sweep.
void aug_spmmv(const CrsMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Stage-2 fused block kernel (SELL-C-sigma, permuted block vectors).
/// Same overwrite contract as the CRS overload.
void aug_spmmv(const SellMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Row-interval variant of the CRS blocked kernel, for overlapping the
/// halo exchange with interior computation: processes rows
/// [row_begin, row_end) only and *adds* its dot contributions to the
/// accumulators (zero them before the first partial call of a sweep).
/// Routed through the same width-dispatch layer as the full sweeps.
void aug_spmmv_rows(const CrsMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Run-list variant of the CRS blocked kernel: processes the union of the
/// given row intervals, which must be ascending, pairwise disjoint and in
/// bounds.  Threads split the concatenated position space with the same
/// static partition as the contiguous sweeps, so a single-run call is
/// bitwise identical to aug_spmmv_rows over that interval.  Same accumulate
/// contract as aug_spmmv_rows.  This is how the overlapped halo exchange
/// sweeps *all* halo-free rows — scattered or not — while messages are in
/// flight (DESIGN.md §5d).
void aug_spmmv_runs(const CrsMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

// Block-format kernels (DESIGN.md §5f).  The BSR/SELL-block bodies run
// behind the same width-dispatch, tiling, banding and NT-store machinery as
// the scalar formats — one column-tile pass keeps b accumulator rows live
// and loads each v block-row once for b matrix rows.  Matrix values may be
// stored float32 (accumulation stays double) and block-column indices may
// stream as 16-bit deltas; both are properties of the matrix object, not
// kernel parameters.  The bitwise fixed-vs-generic parity contract holds
// per format: accumulation order within a row is independent of tiling,
// banding and the dispatch variant.

/// Stage-2 fused block kernel (BSR).  Same overwrite contract as the CRS
/// overload.
void aug_spmmv(const BsrMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Row-interval variant of the BSR kernel (accumulate contract, see
/// aug_spmmv_rows above).  Bounds are scalar rows and need not align to
/// block_dim(): threads split the scalar row space with the same static
/// partition as the CRS kernels, so BSR moments are bitwise identical to
/// the CRS moments at any thread count and partition.
void aug_spmmv_rows(const BsrMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Run-list variant of the BSR kernel over scalar-row runs.  Same
/// accumulate contract as the CRS run-list kernel.
void aug_spmmv_runs(const BsrMatrix& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Stage-2 fused block kernel (SELL-C-sigma over block rows; consumes and
/// produces block-row-permuted vectors, see SellBlockMatrix::permute).
void aug_spmmv(const SellBlockMatrix& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

// Matrix-free stencil kernels (DESIGN.md §5h).  No matrix stream at all:
// interior rows multiply the register/L1-resident coefficient blocks of the
// StencilOperator against branch-free neighbour offsets (plus at most one
// streamed f64 diagonal per row), boundary rows fall back to the operator's
// indexed entries.  Runs behind the same width-dispatch, tiling, banding and
// NT-store machinery, with the same static scalar-row split — stencil
// moments are bitwise identical to the assembled-CRS moments.

/// Stage-2 fused matrix-free kernel.  Same overwrite contract as the CRS
/// overload.
void aug_spmmv(const StencilOperator& a, const AugScalars& s,
               const blas::BlockVector& v, blas::BlockVector& w,
               std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Row-interval variant (accumulate contract, see aug_spmmv_rows above).
void aug_spmmv_rows(const StencilOperator& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    global_index row_begin, global_index row_end,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

/// Run-list variant (accumulate contract): how the overlapped halo exchange
/// sweeps a localized stencil's interior while messages are in flight.
void aug_spmmv_runs(const StencilOperator& a, const AugScalars& s,
                    const blas::BlockVector& v, blas::BlockVector& w,
                    std::span<const IndexRange<global_index>> runs,
                    std::span<complex_t> dot_vv, std::span<complex_t> dot_wv);

}  // namespace kpm::sparse
