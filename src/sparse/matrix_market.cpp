#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sparse/coo.hpp"

namespace kpm::sparse {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CrsMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw matrix_market_error("matrix market: empty stream");
  }
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%matrixmarket" || object != "matrix") {
    throw matrix_market_error("matrix market: bad banner: " + line);
  }
  if (format != "coordinate") {
    throw matrix_market_error("matrix market: only coordinate format supported");
  }
  const bool complex_field = field == "complex";
  if (!complex_field && field != "real" && field != "integer") {
    throw matrix_market_error("matrix market: unsupported field: " + field);
  }
  const bool hermitian = symmetry == "hermitian" || symmetry == "symmetric";
  if (!hermitian && symmetry != "general") {
    throw matrix_market_error("matrix market: unsupported symmetry: " +
                              symmetry);
  }

  // Skip comments, read the size line.
  long long rows = 0, cols = 0, entries = 0;
  for (;;) {
    if (!std::getline(in, line)) {
      throw matrix_market_error("matrix market: missing size line");
    }
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> entries)) {
      throw matrix_market_error("matrix market: bad size line: " + line);
    }
    break;
  }
  if (rows < 0 || cols < 0 || entries < 0) {
    throw matrix_market_error("matrix market: negative sizes");
  }

  CooMatrix coo(rows, cols);
  for (long long e = 0; e < entries; ++e) {
    if (!std::getline(in, line)) {
      throw matrix_market_error("matrix market: truncated entry list");
    }
    if (line.empty() || line[0] == '%') {
      --e;
      continue;
    }
    std::istringstream entry(line);
    long long i = 0, j = 0;
    double re = 0.0, im = 0.0;
    if (!(entry >> i >> j >> re)) {
      throw matrix_market_error("matrix market: bad entry: " + line);
    }
    if (complex_field && !(entry >> im)) {
      throw matrix_market_error("matrix market: missing imaginary part: " +
                                line);
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw matrix_market_error("matrix market: index out of range: " + line);
    }
    const complex_t value{re, im};
    coo.add(i - 1, j - 1, value);
    if (hermitian && i != j) coo.add(j - 1, i - 1, std::conj(value));
  }
  coo.compress();
  return CrsMatrix(coo);
}

CrsMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw matrix_market_error("matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CrsMatrix& a) {
  out << "%%MatrixMarket matrix coordinate complex general\n";
  out << "% written by kpm-pe\n";
  out << a.nrows() << ' ' << a.ncols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << i + 1 << ' ' << cols[k] + 1 << ' ' << vals[k].real() << ' '
          << vals[k].imag() << '\n';
    }
  }
}

void write_matrix_market_file(const std::string& path, const CrsMatrix& a) {
  std::ofstream out(path);
  if (!out) throw matrix_market_error("matrix market: cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace kpm::sparse
