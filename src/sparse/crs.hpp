// Compressed Row Storage.
//
// CRS is equivalent to SELL-1 (paper Sec. IV-A) and — thanks to the
// across-the-block vectorization of SpMMV — is the preferred format for the
// blocked KPM kernels: matrix elements within a row are consecutive, no
// zero fill-in, no gather of matrix data.
#pragma once

#include <span>

#include "sparse/coo.hpp"
#include "util/aligned.hpp"
#include "util/types.hpp"

namespace kpm::sparse {

class CrsMatrix {
 public:
  CrsMatrix() = default;
  /// Builds from a compressed COO matrix (sorted, duplicate-free).
  explicit CrsMatrix(const CooMatrix& coo);
  /// Builds from raw CRS arrays, preserving the given per-row entry order
  /// (no sorting).  The distributed frontier matrix stores each ghost row in
  /// its *owner's* accumulation order — which is not ascending under the
  /// borrowing rank's column remap — so the depth-s redundant sweeps
  /// reproduce the owner's per-row arithmetic bit for bit (DESIGN §5j).
  CrsMatrix(global_index nrows, global_index ncols,
            aligned_vector<global_index> row_ptr,
            aligned_vector<local_index> col_idx,
            aligned_vector<complex_t> values);

  [[nodiscard]] global_index nrows() const noexcept { return nrows_; }
  [[nodiscard]] global_index ncols() const noexcept { return ncols_; }
  [[nodiscard]] global_index nnz() const noexcept {
    return static_cast<global_index>(values_.size());
  }
  /// Average entries per row, Nnzr in the paper (~13 for the TI matrix).
  [[nodiscard]] double avg_nnz_per_row() const noexcept;

  [[nodiscard]] std::span<const global_index> row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const local_index> col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] std::span<const complex_t> values() const noexcept {
    return values_;
  }

  /// Entries of row i as (col, value) spans.
  [[nodiscard]] std::span<const local_index> row_cols(global_index i) const;
  [[nodiscard]] std::span<const complex_t> row_values(global_index i) const;

  /// Value at (row, col), zero if not stored. O(row length) lookup.
  [[nodiscard]] complex_t at(global_index row, global_index col) const;

  /// Total bytes of matrix data + index data, the Nnz(Sd+Si) traffic term.
  [[nodiscard]] double storage_bytes() const noexcept;

 private:
  global_index nrows_ = 0;
  global_index ncols_ = 0;
  aligned_vector<global_index> row_ptr_;
  aligned_vector<local_index> col_idx_;
  aligned_vector<complex_t> values_;
};

}  // namespace kpm::sparse
