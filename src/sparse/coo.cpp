#include "sparse/coo.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/check.hpp"

namespace kpm::sparse {

CooMatrix::CooMatrix(global_index nrows, global_index ncols)
    : nrows_(nrows), ncols_(ncols) {
  require(nrows >= 0 && ncols >= 0, "CooMatrix: negative dimension");
}

void CooMatrix::add(global_index row, global_index col, complex_t value) {
  require(row >= 0 && row < nrows_ && col >= 0 && col < ncols_,
          "CooMatrix::add: index out of range");
  entries_.push_back({row, col, value});
  compressed_ = false;
}

void CooMatrix::add_hermitian_pair(global_index row, global_index col,
                                   complex_t value) {
  add(row, col, value);
  if (row != col) add(col, row, std::conj(value));
}

void CooMatrix::compress(double drop_tol) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::vector<Triplet> merged;
  merged.reserve(entries_.size());
  for (const auto& t : entries_) {
    if (!merged.empty() && merged.back().row == t.row &&
        merged.back().col == t.col) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  if (drop_tol > 0.0) {
    std::erase_if(merged, [drop_tol](const Triplet& t) {
      return std::abs(t.value) <= drop_tol;
    });
  }
  entries_ = std::move(merged);
  compressed_ = true;
}

bool CooMatrix::is_hermitian(double tol) const {
  require(compressed_, "is_hermitian: call compress() first");
  if (nrows_ != ncols_) return false;
  std::map<std::pair<global_index, global_index>, complex_t> lookup;
  for (const auto& t : entries_) lookup[{t.row, t.col}] = t.value;
  for (const auto& t : entries_) {
    const auto it = lookup.find({t.col, t.row});
    const complex_t transposed = it == lookup.end() ? complex_t{} : it->second;
    if (std::abs(t.value - std::conj(transposed)) > tol) return false;
  }
  return true;
}

}  // namespace kpm::sparse
