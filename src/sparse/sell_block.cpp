#include "sparse/sell_block.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::sparse {

namespace {

inline bool is_exact_zero(complex_t v) noexcept {
  return v.real() == 0.0 && v.imag() == 0.0;
}

}  // namespace

SellBlockMatrix::SellBlockMatrix(const BsrMatrix& bsr, int chunk, int sigma)
    : nrows_(bsr.nrows()),
      ncols_(bsr.ncols()),
      nnz_(bsr.nnz()),
      b_(bsr.block_dim()),
      chunk_(chunk),
      sigma_(sigma),
      precision_(bsr.precision()) {
  require(chunk >= 1, "SELL-block: chunk height must be >= 1");
  require(sigma == 1 || sigma % chunk == 0,
          "SELL-block: sigma must be 1 or a multiple of the chunk height");
  require(nrows_ == ncols_,
          "SELL-block: square matrix required (symmetric block permutation)");

  const global_index nbr = bsr.block_rows();
  const auto bptr = bsr.block_ptr();
  const auto bcol = bsr.block_col();
  const auto row_len = [&](global_index br) {
    return bptr[static_cast<std::size_t>(br) + 1] -
           bptr[static_cast<std::size_t>(br)];
  };

  // Sort block rows by descending block count within each sigma window.
  perm_.resize(static_cast<std::size_t>(nbr));
  std::iota(perm_.begin(), perm_.end(), global_index{0});
  if (sigma_ > 1) {
    for (global_index begin = 0; begin < nbr; begin += sigma_) {
      const global_index end = std::min<global_index>(begin + sigma_, nbr);
      std::stable_sort(
          perm_.begin() + begin, perm_.begin() + end,
          [&](global_index a, global_index b) { return row_len(a) > row_len(b); });
    }
  }
  inv_perm_.resize(perm_.size());
  for (std::size_t n = 0; n < perm_.size(); ++n) {
    inv_perm_[static_cast<std::size_t>(perm_[n])] =
        static_cast<global_index>(n);
  }

  const global_index nchunks = (nbr + chunk_ - 1) / chunk_;
  chunk_len_.resize(static_cast<std::size_t>(nchunks));
  chunk_ptr_.resize(static_cast<std::size_t>(nchunks) + 1);
  chunk_ptr_[0] = 0;
  for (global_index c = 0; c < nchunks; ++c) {
    local_index len = 0;
    for (int lane = 0; lane < chunk_; ++lane) {
      const global_index new_br = c * chunk_ + lane;
      if (new_br >= nbr) break;
      len = std::max(len, static_cast<local_index>(
                              row_len(perm_[static_cast<std::size_t>(new_br)])));
    }
    chunk_len_[static_cast<std::size_t>(c)] = len;
    chunk_ptr_[static_cast<std::size_t>(c) + 1] =
        chunk_ptr_[static_cast<std::size_t>(c)] +
        static_cast<global_index>(len) * chunk_;
  }

  const std::size_t total =
      static_cast<std::size_t>(chunk_ptr_[static_cast<std::size_t>(nchunks)]);
  const std::size_t bb = static_cast<std::size_t>(b_) * b_;
  block_col_.assign(total, 0);
  block_mask_.assign(total, 0);  // padding keeps mask 0 -> zero kernel work
  const bool f32 = precision_ == MatrixPrecision::f32;
  if (f32) {
    values_f32_.assign(total * bb, std::complex<float>{});
  } else {
    values_.assign(total * bb, complex_t{});
  }

  // Blocks of one block row sorted by *permuted* block column so each lane's
  // column sequence ascends again — the delta stream's precondition.
  std::vector<std::pair<local_index, global_index>> order;  // (new_bc, block)
  for (global_index c = 0; c < nchunks; ++c) {
    const global_index base = chunk_ptr_[static_cast<std::size_t>(c)];
    const local_index clen = chunk_len_[static_cast<std::size_t>(c)];
    for (int lane = 0; lane < chunk_; ++lane) {
      const global_index new_br = c * chunk_ + lane;
      if (new_br >= nbr) continue;  // tail lanes keep col 0 / zero values
      const global_index old_br = perm_[static_cast<std::size_t>(new_br)];
      order.clear();
      for (global_index k = bptr[static_cast<std::size_t>(old_br)];
           k < bptr[static_cast<std::size_t>(old_br) + 1]; ++k) {
        order.emplace_back(
            static_cast<local_index>(inv_perm_[static_cast<std::size_t>(
                bcol[static_cast<std::size_t>(k)])]),
            k);
      }
      std::sort(order.begin(), order.end());
      // Padding repeats the last real column (delta 0, zero values); a block
      // row with no blocks parks on its own diagonal block column.
      const local_index pad_col =
          order.empty() ? static_cast<local_index>(new_br)
                        : order.back().first;
      for (local_index j = 0; j < clen; ++j) {
        const std::size_t slot = static_cast<std::size_t>(
            base + static_cast<global_index>(j) * chunk_ + lane);
        if (j < static_cast<local_index>(order.size())) {
          block_col_[slot] = order[static_cast<std::size_t>(j)].first;
          const std::size_t src_blk =
              static_cast<std::size_t>(order[static_cast<std::size_t>(j)].second);
          // Values are copied verbatim, so the source occupancy transfers.
          block_mask_[slot] = bsr.block_mask()[src_blk];
          const std::size_t src = src_blk * bb;
          if (f32) {
            std::copy_n(bsr.values_f32().data() + src, bb,
                        values_f32_.data() + slot * bb);
          } else {
            std::copy_n(bsr.values().data() + src, bb,
                        values_.data() + slot * bb);
          }
        } else {
          block_col_[slot] = pad_col;
        }
      }
    }
  }

  // 16-bit delta stream over each lane's (ascending) column sequence.
  bool fits = true;
  first_col_.assign(static_cast<std::size_t>(nbr), 0);
  col_delta16_.assign(total, 0);
  for (global_index c = 0; c < nchunks && fits; ++c) {
    const global_index base = chunk_ptr_[static_cast<std::size_t>(c)];
    const local_index clen = chunk_len_[static_cast<std::size_t>(c)];
    for (int lane = 0; lane < chunk_ && fits; ++lane) {
      const global_index new_br = c * chunk_ + lane;
      if (new_br >= nbr) break;
      local_index prev = 0;
      for (local_index j = 0; j < clen; ++j) {
        const std::size_t slot = static_cast<std::size_t>(
            base + static_cast<global_index>(j) * chunk_ + lane);
        const local_index bc = block_col_[slot];
        if (j == 0) {
          first_col_[static_cast<std::size_t>(new_br)] = bc;
        } else {
          const local_index d = bc - prev;
          if (d > 65535) {
            fits = false;
            break;
          }
          col_delta16_[slot] = static_cast<std::uint16_t>(d);
        }
        prev = bc;
      }
    }
  }
  if (!fits) {
    first_col_.clear();
    first_col_.shrink_to_fit();
    col_delta16_.clear();
    col_delta16_.shrink_to_fit();
  }
}

SellBlockMatrix::SellBlockMatrix(const CrsMatrix& crs, int block_dim,
                                 int chunk, int sigma,
                                 MatrixPrecision precision)
    : SellBlockMatrix(BsrMatrix(crs, block_dim, precision), chunk, sigma) {}

double SellBlockMatrix::fill_ratio() const noexcept {
  const global_index stored = stored_values();
  return stored > 0 ? static_cast<double>(nnz_) / static_cast<double>(stored)
                    : 1.0;
}

void SellBlockMatrix::permute(std::span<const complex_t> x,
                              std::span<complex_t> x_perm) const {
  const std::size_t n = static_cast<std::size_t>(nrows_);
  require(x.size() == n && x_perm.size() == n, "permute: size mismatch");
  for (std::size_t br = 0; br < perm_.size(); ++br) {
    const std::size_t old_base =
        static_cast<std::size_t>(perm_[br]) * static_cast<std::size_t>(b_);
    for (int i = 0; i < b_; ++i) {
      x_perm[br * static_cast<std::size_t>(b_) + i] = x[old_base + i];
    }
  }
}

void SellBlockMatrix::unpermute(std::span<const complex_t> x_perm,
                                std::span<complex_t> x) const {
  const std::size_t n = static_cast<std::size_t>(nrows_);
  require(x.size() == n && x_perm.size() == n, "unpermute: size mismatch");
  for (std::size_t br = 0; br < perm_.size(); ++br) {
    const std::size_t old_base =
        static_cast<std::size_t>(perm_[br]) * static_cast<std::size_t>(b_);
    for (int i = 0; i < b_; ++i) {
      x[old_base + i] = x_perm[br * static_cast<std::size_t>(b_) + i];
    }
  }
}

void SellBlockMatrix::permute(const blas::BlockVector& x,
                              blas::BlockVector& x_perm) const {
  require(x.rows() == nrows_ && x_perm.rows() == nrows_ &&
              x.width() == x_perm.width(),
          "permute(block): shape mismatch");
  for (global_index br = 0; br < static_cast<global_index>(perm_.size());
       ++br) {
    const global_index old_base = perm_[static_cast<std::size_t>(br)] * b_;
    for (int i = 0; i < b_; ++i) {
      for (int r = 0; r < x.width(); ++r) {
        x_perm(br * b_ + i, r) = x(old_base + i, r);
      }
    }
  }
}

void SellBlockMatrix::unpermute(const blas::BlockVector& x_perm,
                                blas::BlockVector& x) const {
  require(x.rows() == nrows_ && x_perm.rows() == nrows_ &&
              x.width() == x_perm.width(),
          "unpermute(block): shape mismatch");
  for (global_index br = 0; br < static_cast<global_index>(perm_.size());
       ++br) {
    const global_index old_base = perm_[static_cast<std::size_t>(br)] * b_;
    for (int i = 0; i < b_; ++i) {
      for (int r = 0; r < x.width(); ++r) {
        x(old_base + i, r) = x_perm(br * b_ + i, r);
      }
    }
  }
}

CrsMatrix SellBlockMatrix::to_crs() const {
  CooMatrix coo(nrows_, ncols_);
  const global_index nbr = block_rows();
  const std::size_t bb = static_cast<std::size_t>(b_) * b_;
  for (global_index c = 0; c < num_chunks(); ++c) {
    const global_index base = chunk_ptr_[static_cast<std::size_t>(c)];
    const local_index clen = chunk_len_[static_cast<std::size_t>(c)];
    for (int lane = 0; lane < chunk_; ++lane) {
      const global_index new_br = c * chunk_ + lane;
      if (new_br >= nbr) continue;
      const global_index old_row0 = perm_[static_cast<std::size_t>(new_br)] * b_;
      for (local_index j = 0; j < clen; ++j) {
        const std::size_t slot = static_cast<std::size_t>(
            base + static_cast<global_index>(j) * chunk_ + lane);
        const global_index old_col0 =
            perm_[static_cast<std::size_t>(block_col_[slot])] * b_;
        for (int jb = 0; jb < b_; ++jb) {
          for (int ib = 0; ib < b_; ++ib) {
            const std::size_t off =
                slot * bb + static_cast<std::size_t>(jb) * b_ + ib;
            const complex_t v =
                precision_ == MatrixPrecision::f64
                    ? values_[off]
                    : complex_t{
                          static_cast<double>(values_f32_[off].real()),
                          static_cast<double>(values_f32_[off].imag())};
            // Padding blocks are all-zero, so dropping exact zeros also
            // drops every duplicate coordinate the padding repeats.
            if (!is_exact_zero(v)) coo.add(old_row0 + ib, old_col0 + jb, v);
          }
        }
      }
    }
  }
  coo.compress();
  return CrsMatrix(coo);
}

double SellBlockMatrix::storage_bytes() const noexcept {
  const double value_bytes =
      precision_ == MatrixPrecision::f64 ? 16.0 : 8.0;
  // Index share per padded block includes the 2-byte occupancy mask.
  double bytes =
      static_cast<double>(stored_values()) * value_bytes +
      static_cast<double>(padded_blocks()) * (index_bits() / 8.0 + 2.0);
  if (index_bits() == 16) {
    bytes += static_cast<double>(block_rows()) * sizeof(local_index);
  }
  return bytes;
}

}  // namespace kpm::sparse
