#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace kpm::sparse {

SellMatrix::SellMatrix(const CrsMatrix& crs, int chunk, int sigma)
    : nrows_(crs.nrows()),
      ncols_(crs.ncols()),
      nnz_(crs.nnz()),
      chunk_(chunk),
      sigma_(sigma) {
  require(chunk >= 1, "SELL: chunk height must be >= 1");
  require(sigma == 1 || sigma % chunk == 0,
          "SELL: sigma must be 1 or a multiple of the chunk height");

  // Sort rows by descending length within each sigma window.
  perm_.resize(static_cast<std::size_t>(nrows_));
  std::iota(perm_.begin(), perm_.end(), global_index{0});
  if (sigma_ > 1) {
    for (global_index begin = 0; begin < nrows_; begin += sigma_) {
      const global_index end = std::min<global_index>(begin + sigma_, nrows_);
      std::stable_sort(perm_.begin() + begin, perm_.begin() + end,
                       [&](global_index a, global_index b) {
                         return crs.row_cols(a).size() > crs.row_cols(b).size();
                       });
    }
  }
  inv_perm_.resize(perm_.size());
  for (std::size_t n = 0; n < perm_.size(); ++n) {
    inv_perm_[static_cast<std::size_t>(perm_[n])] = static_cast<global_index>(n);
  }

  const global_index nchunks = (nrows_ + chunk_ - 1) / chunk_;
  chunk_len_.resize(static_cast<std::size_t>(nchunks));
  chunk_ptr_.resize(static_cast<std::size_t>(nchunks) + 1);
  chunk_ptr_[0] = 0;
  for (global_index c = 0; c < nchunks; ++c) {
    local_index len = 0;
    for (int lane = 0; lane < chunk_; ++lane) {
      const global_index new_row = c * chunk_ + lane;
      if (new_row >= nrows_) break;
      len = std::max(len, static_cast<local_index>(
                              crs.row_cols(perm_[new_row]).size()));
    }
    chunk_len_[c] = len;
    chunk_ptr_[c + 1] = chunk_ptr_[c] + static_cast<global_index>(len) * chunk_;
  }

  values_.assign(static_cast<std::size_t>(chunk_ptr_[nchunks]), complex_t{});
  // Padding lanes point at the row's own (permuted) index with value zero so
  // gathers stay in bounds and never fault.
  col_idx_.resize(values_.size());
  for (global_index c = 0; c < nchunks; ++c) {
    const global_index base = chunk_ptr_[c];
    for (int lane = 0; lane < chunk_; ++lane) {
      const global_index new_row = c * chunk_ + lane;
      const global_index safe_col =
          new_row < nrows_ ? new_row : global_index{0};
      for (local_index j = 0; j < chunk_len_[c]; ++j) {
        col_idx_[base + static_cast<global_index>(j) * chunk_ + lane] =
            static_cast<local_index>(safe_col);
      }
      if (new_row >= nrows_) continue;
      const global_index old_row = perm_[new_row];
      const auto cols = crs.row_cols(old_row);
      const auto vals = crs.row_values(old_row);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const auto slot = base + static_cast<global_index>(j) * chunk_ + lane;
        col_idx_[slot] =
            static_cast<local_index>(inv_perm_[static_cast<std::size_t>(cols[j])]);
        values_[slot] = vals[j];
      }
    }
  }
}

double SellMatrix::fill_in_ratio() const noexcept {
  return nnz_ == 0 ? 1.0
                   : static_cast<double>(padded_elements()) /
                         static_cast<double>(nnz_);
}

void SellMatrix::permute(std::span<const complex_t> x,
                         std::span<complex_t> x_perm) const {
  require(x.size() == perm_.size() && x_perm.size() == perm_.size(),
          "permute: size mismatch");
  for (std::size_t n = 0; n < perm_.size(); ++n) {
    x_perm[n] = x[static_cast<std::size_t>(perm_[n])];
  }
}

void SellMatrix::unpermute(std::span<const complex_t> x_perm,
                           std::span<complex_t> x) const {
  require(x.size() == perm_.size() && x_perm.size() == perm_.size(),
          "unpermute: size mismatch");
  for (std::size_t n = 0; n < perm_.size(); ++n) {
    x[static_cast<std::size_t>(perm_[n])] = x_perm[n];
  }
}

void SellMatrix::permute(const blas::BlockVector& x,
                         blas::BlockVector& x_perm) const {
  require(x.rows() == nrows_ && x_perm.rows() == nrows_ &&
              x.width() == x_perm.width(),
          "permute(block): shape mismatch");
  for (global_index n = 0; n < nrows_; ++n) {
    const global_index old_row = perm_[static_cast<std::size_t>(n)];
    for (int r = 0; r < x.width(); ++r) x_perm(n, r) = x(old_row, r);
  }
}

void SellMatrix::unpermute(const blas::BlockVector& x_perm,
                           blas::BlockVector& x) const {
  require(x.rows() == nrows_ && x_perm.rows() == nrows_ &&
              x.width() == x_perm.width(),
          "unpermute(block): shape mismatch");
  for (global_index n = 0; n < nrows_; ++n) {
    const global_index old_row = perm_[static_cast<std::size_t>(n)];
    for (int r = 0; r < x.width(); ++r) x(old_row, r) = x_perm(n, r);
  }
}

double SellMatrix::storage_bytes() const noexcept {
  return static_cast<double>(padded_elements()) *
         (bytes_per_element + bytes_per_index);
}

}  // namespace kpm::sparse
