// SIMT execution model of the GPU aug_spmmv kernel (paper Sec. IV-C, Fig. 6).
//
// The model replays the warp-level memory behaviour of the Kepler kernels
// through the memsim cache hierarchy:
//
//  * Warps are arranged along block-vector rows.  For R >= warpSize each
//    matrix element is requested by R/32 warps (the "broadcast" that makes
//    texture traffic scale linearly with R, Fig. 9); for R < warpSize one
//    warp covers 32/R matrix rows at a time.
//  * Matrix values, column indices and the input block vector are read-only
//    and flow through the per-SMX texture cache (32 B transactions); the
//    output block vector (and the old w for the augmented kernels) uses the
//    ordinary global path through the shared L2 (128 B transactions).
//  * The on-the-fly dot products of the fully augmented kernel operate on
//    register-resident data (warp shuffles) — they add *no* memory traffic,
//    only instruction latency, which is why Fig. 10(c) shows the same
//    volumes at lower bandwidth levels.
#pragma once

#include "memsim/hierarchies.hpp"
#include "sparse/crs.hpp"

namespace kpm::gpusim {

/// The three kernels of paper Fig. 10.
enum class GpuKernel {
  simple_spmmv,   ///< (a) plain SpMMV
  aug_no_dots,    ///< (b) augmented SpMMV without on-the-fly dot products
  aug_full,       ///< (c) fully augmented SpMMV (shift, scale, dots)
};

[[nodiscard]] const char* kernel_name(GpuKernel k);

/// Per-sweep traffic volumes of the GPU memory system components, bytes.
struct GpuTraffic {
  std::uint64_t tex_bytes = 0;   ///< delivered by the read-only cache
  std::uint64_t l2_bytes = 0;    ///< requested of the shared L2
  std::uint64_t dram_bytes = 0;  ///< transferred to/from device memory
  double flops = 0.0;            ///< kernel flops of the sweep
  /// Shuffle-reduction rounds executed.  Per matrix row and dot product the
  /// kernel runs log2(min(R, 32)) rounds on each covering warp; with R < 32
  /// a warp covers 32/R rows at once, so the per-row cost is
  /// 2 * log2(min(R, 32)) * R / 32 (zero at R = 1: one lane per row needs
  /// no shuffling).
  double warp_reductions = 0.0;
  /// 32-byte load transactions issued (nvprof gld_transactions analogue):
  /// a fully coalesced S-byte warp load issues ceil(S/32); a scattered
  /// per-lane access issues one transaction per lane regardless of how few
  /// of its 32 bytes are used.  Compare against useful-bytes/32 for the
  /// load efficiency.
  std::uint64_t load_transactions = 0;
};

/// Replays one sweep of `kernel` at block width `width` (R) and returns the
/// traffic.  `warmup` sweeps precede the measurement (KPM steady state).
[[nodiscard]] GpuTraffic trace_gpu_kernel(const sparse::CrsMatrix& a,
                                          int width, GpuKernel kernel,
                                          memsim::GpuHierarchy& h,
                                          int warmup = 1);

}  // namespace kpm::gpusim
