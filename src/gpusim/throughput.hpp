// Kepler throughput model: converts traced traffic volumes into kernel time
// and sustained performance / per-component bandwidths (paper Figs. 10, 11).
//
// t_kernel = max( V_dram / b_dram, V_L2 / b_L2, V_tex / b_tex,
//                 flops / P_eff, t_reduction )
//
// For the fully augmented kernel the on-the-fly dot products serialize the
// warp through log2(32) shuffle rounds per row; the paper identifies
// *instruction latency* as the resulting bottleneck (Fig. 10c).  We model it
// as a per-reduction cycle cost on the SMX array, which pushes all measured
// bandwidths below their saturation levels exactly as in the paper.
#pragma once

#include "gpusim/simt.hpp"
#include "perfmodel/machine.hpp"

namespace kpm::gpusim {

struct GpuKernelPrediction {
  double seconds = 0.0;
  double gflops = 0.0;
  double dram_bw_gbs = 0.0;  ///< achieved DRAM bandwidth during the kernel
  double l2_bw_gbs = 0.0;
  double tex_bw_gbs = 0.0;
  const char* bottleneck = "";
};

/// Predicts time and achieved bandwidths of one kernel sweep on `m`.
[[nodiscard]] GpuKernelPrediction predict_kernel(const GpuTraffic& t,
                                                 const perfmodel::MachineSpec& m);

/// Effective cycles one shuffle-reduction round costs an SMX.  The raw
/// SHFL+FADD dependency chain is ~10 cycles; resident warps hide part of it
/// but the dependent accumulation chain keeps a multiple exposed —
/// calibrated so the fully augmented kernel lands ~30-40% below the no-dots
/// variant at R = 32, the gap of paper Fig. 10(b) vs (c).
inline constexpr double reduction_cycles = 24.0;

/// Fraction of double-precision peak the SpMMV inner loop can sustain
/// (complex FMA mix without dual issue).
inline constexpr double compute_efficiency = 0.60;

}  // namespace kpm::gpusim
