#include "gpusim/simt.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kpm::gpusim {
namespace {

constexpr int warp_size = 32;
constexpr std::uint32_t sd = bytes_per_element;  // 16
constexpr std::uint32_t si = bytes_per_index;    // 4

struct Map {
  memsim::addr_t col_idx = 2ull << 30;
  memsim::addr_t values = 4ull << 30;
  memsim::addr_t vec_v = 8ull << 30;
  memsim::addr_t vec_w = 12ull << 30;
};

void sweep(const sparse::CrsMatrix& a, int width, GpuKernel kernel,
           memsim::GpuHierarchy& h, GpuTraffic* out) {
  const Map map;
  const auto row_ptr = a.row_ptr();
  const auto col = a.col_idx();
  const std::uint32_t row_bytes = static_cast<std::uint32_t>(width) * sd;
  // R >= 32: each scalar matrix element is requested once per covering warp.
  const int broadcast_requests = std::max(1, width / warp_size);
  auto& ro = *h.readonly_path;
  auto& gl = *h.global_path;

  std::uint64_t transactions = 0;
  for (global_index i = 0; i < a.nrows(); ++i) {
    for (global_index k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      for (int g = 0; g < broadcast_requests; ++g) {
        ro.read(map.values + static_cast<memsim::addr_t>(k) * sd, sd);
        ro.read(map.col_idx + static_cast<memsim::addr_t>(k) * si, si);
        transactions += 2;  // one broadcast transaction per operand
      }
      // Coalesced read of the input block-vector row (read-only path).
      ro.read(map.vec_v + static_cast<memsim::addr_t>(col[k]) * row_bytes,
              row_bytes);
      transactions += (row_bytes + 31) / 32;
    }
    switch (kernel) {
      case GpuKernel::simple_spmmv:
        // y = A x: store the result row.
        gl.write(map.vec_w + static_cast<memsim::addr_t>(i) * row_bytes,
                 row_bytes);
        break;
      case GpuKernel::aug_no_dots:
      case GpuKernel::aug_full:
        // w = alpha A v + beta v + gamma w: read v_i (read-only), read-modify-
        // write w_i through the global path.
        ro.read(map.vec_v + static_cast<memsim::addr_t>(i) * row_bytes,
                row_bytes);
        gl.read(map.vec_w + static_cast<memsim::addr_t>(i) * row_bytes,
                row_bytes);
        gl.write(map.vec_w + static_cast<memsim::addr_t>(i) * row_bytes,
                 row_bytes);
        break;
    }
    switch (kernel) {
      case GpuKernel::simple_spmmv:
        transactions += (row_bytes + 31) / 32;  // store of the result row
        break;
      case GpuKernel::aug_no_dots:
      case GpuKernel::aug_full:
        transactions += 3 * ((row_bytes + 31) / 32);  // v_i read, w_i r+w
        break;
    }
    if (kernel == GpuKernel::aug_full && out != nullptr) {
      // Two dot products, log2(lanes-per-row) shuffle rounds each, amortized
      // over the 32/lanes rows a warp covers (Sec. IV-C steps 2-3).
      const int lanes = std::min(width, warp_size);
      const double rounds = 2.0 * std::log2(static_cast<double>(lanes)) *
                            static_cast<double>(width) / warp_size;
      out->warp_reductions += rounds;
    }
  }
  if (out != nullptr) out->load_transactions += transactions;
}

double kernel_flops(const sparse::CrsMatrix& a, int width, GpuKernel kernel) {
  const double fa = flops_complex_add;
  const double fm = flops_complex_mul;
  const double spmmv =
      static_cast<double>(a.nnz()) * width * (fa + fm);
  if (kernel == GpuKernel::simple_spmmv) return spmmv;
  const double n = static_cast<double>(a.nrows()) * width;
  // Fused tail: axpy-like update (2 mul + 2 add complex ops folded into
  // 7Fa/2 + 9Fm/2 per element for the full kernel, Table I).
  if (kernel == GpuKernel::aug_no_dots) {
    return spmmv + n * (2.0 * (fa + fm) + fm);
  }
  return spmmv + n * (7.0 * fa / 2.0 + 9.0 * fm / 2.0);
}

}  // namespace

const char* kernel_name(GpuKernel k) {
  switch (k) {
    case GpuKernel::simple_spmmv:
      return "spmmv";
    case GpuKernel::aug_no_dots:
      return "aug_spmmv_nodots";
    case GpuKernel::aug_full:
      return "aug_spmmv";
  }
  return "?";
}

GpuTraffic trace_gpu_kernel(const sparse::CrsMatrix& a, int width,
                            GpuKernel kernel, memsim::GpuHierarchy& h,
                            int warmup) {
  require(width >= 1, "trace_gpu_kernel: width >= 1");
  require(width <= warp_size || width % warp_size == 0,
          "trace_gpu_kernel: width must be <= 32 or a multiple of 32");
  h.reset();
  for (int i = 0; i < warmup; ++i) sweep(a, width, kernel, h, nullptr);
  const std::uint64_t tex0 = h.tex_bytes();
  const std::uint64_t l20 = h.l2_bytes();
  const std::uint64_t dram0 = h.dram_bytes();
  GpuTraffic t;
  sweep(a, width, kernel, h, &t);
  t.tex_bytes = h.tex_bytes() - tex0;
  t.l2_bytes = h.l2_bytes() - l20;
  t.dram_bytes = h.dram_bytes() - dram0;
  t.flops = kernel_flops(a, width, kernel);
  return t;
}

}  // namespace kpm::gpusim
