// GPU sparse-format comparison models (paper Sec. IV-A):
//
//  * For single-vector SpMV on SIMT hardware, a scalar CRS kernel (one
//    thread per row) reads matrix values/indices with a 32-way scattered
//    pattern, while SELL-32 stores the chunk column-major so a warp's loads
//    coalesce — the motivation for SELL-C-sigma in the first place.
//  * For SpMMV with row-major block vectors the roles invert: "CRS/SELL-1
//    may yield even better SpMMV performance than a SIMD-aware storage
//    format for SpMV like SELL-32, because matrix elements within a row are
//    stored consecutively" — the warp vectorizes across the block columns
//    and the matrix scalar is broadcast, whereas SELL-32 lanes straddle 32
//    different rows and their block-row accesses scatter.
//
// These models replay both access patterns through the Kepler cache model
// so the claim becomes a measurable ablation (bench/ablation_formats).
#pragma once

#include "gpusim/simt.hpp"
#include "sparse/sell.hpp"

namespace kpm::gpusim {

enum class GpuMatrixFormat {
  crs_scalar,  ///< CRS, one thread per row (scattered matrix access)
  sell_warp,   ///< SELL-32: chunk-column-major, warp-coalesced matrix access
};

[[nodiscard]] const char* format_name(GpuMatrixFormat f);

/// Replays a single-vector SpMV sweep in the given format.
[[nodiscard]] GpuTraffic trace_gpu_spmv_format(const sparse::CrsMatrix& a,
                                               GpuMatrixFormat format,
                                               memsim::GpuHierarchy& h,
                                               int warmup = 1);

/// Replays a block SpMMV sweep at width R: `sell_warp` assigns warp lanes to
/// 32 consecutive *rows* (as a SpMV-tuned SELL-32 kernel would), which
/// scatters the block-vector reads; `crs_scalar` here denotes the paper's
/// block-row mapping (lanes across the R columns, matrix broadcast) — the
/// layout of trace_gpu_kernel.
[[nodiscard]] GpuTraffic trace_gpu_spmmv_format(const sparse::CrsMatrix& a,
                                                int width,
                                                GpuMatrixFormat format,
                                                memsim::GpuHierarchy& h,
                                                int warmup = 1);

}  // namespace kpm::gpusim
