#include "gpusim/formats.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kpm::gpusim {
namespace {

constexpr int warp_size = 32;
constexpr std::uint32_t sd = bytes_per_element;
constexpr std::uint32_t si = bytes_per_index;

struct Map {
  memsim::addr_t col_idx = 2ull << 30;
  memsim::addr_t values = 4ull << 30;
  memsim::addr_t vec_v = 8ull << 30;
  memsim::addr_t vec_w = 12ull << 30;
};

/// Scalar-CRS SpMV: warp of 32 threads covers 32 consecutive rows; at inner
/// step j each active lane loads its own (value, index, x[col]) — three
/// scattered transactions per lane.
void sweep_spmv_crs_scalar(const sparse::CrsMatrix& a,
                           memsim::GpuHierarchy& h,
                           std::uint64_t& transactions) {
  const Map map;
  const auto row_ptr = a.row_ptr();
  const auto col = a.col_idx();
  auto& ro = *h.readonly_path;
  auto& gl = *h.global_path;
  for (global_index warp_begin = 0; warp_begin < a.nrows();
       warp_begin += warp_size) {
    const global_index warp_end =
        std::min<global_index>(warp_begin + warp_size, a.nrows());
    local_index max_len = 0;
    for (global_index i = warp_begin; i < warp_end; ++i) {
      max_len = std::max(
          max_len, static_cast<local_index>(row_ptr[i + 1] - row_ptr[i]));
    }
    for (local_index j = 0; j < max_len; ++j) {
      for (global_index i = warp_begin; i < warp_end; ++i) {
        const global_index k = row_ptr[i] + j;
        if (k >= row_ptr[i + 1]) continue;  // lane predicated off
        ro.read(map.values + static_cast<memsim::addr_t>(k) * sd, sd);
        ro.read(map.col_idx + static_cast<memsim::addr_t>(k) * si, si);
        ro.read(map.vec_v + static_cast<memsim::addr_t>(col[k]) * sd, sd);
        transactions += 3;  // fully scattered: one per lane and operand
      }
    }
    for (global_index i = warp_begin; i < warp_end; ++i) {
      gl.write(map.vec_w + static_cast<memsim::addr_t>(i) * sd, sd);
    }
    transactions +=
        (static_cast<std::uint64_t>(warp_end - warp_begin) * sd + 31) / 32;
  }
}

/// SELL-32 SpMV: the chunk stores its values column-major, so one warp-step
/// is a single fully coalesced load of 32 values (and 32 indices); only the
/// x gather stays scattered.
void sweep_spmv_sell_warp(const sparse::SellMatrix& s,
                          memsim::GpuHierarchy& h,
                          std::uint64_t& transactions) {
  const Map map;
  const auto cptr = s.chunk_ptr();
  const auto clen = s.chunk_len();
  const auto col = s.col_idx();
  const int chunk = s.chunk_height();
  auto& ro = *h.readonly_path;
  auto& gl = *h.global_path;
  for (global_index c = 0; c < s.num_chunks(); ++c) {
    const global_index base = cptr[c];
    const int lanes = static_cast<int>(
        std::min<global_index>(chunk, s.nrows() - c * chunk));
    for (local_index j = 0; j < clen[c]; ++j) {
      const global_index off = base + static_cast<global_index>(j) * chunk;
      // Coalesced: one contiguous value segment and one index segment.
      ro.read(map.values + static_cast<memsim::addr_t>(off) * sd,
              static_cast<std::uint32_t>(lanes) * sd);
      ro.read(map.col_idx + static_cast<memsim::addr_t>(off) * si,
              static_cast<std::uint32_t>(lanes) * si);
      transactions += (static_cast<std::uint64_t>(lanes) * sd + 31) / 32 +
                      (static_cast<std::uint64_t>(lanes) * si + 31) / 32;
      // x gather stays per-lane (scattered columns).
      for (int lane = 0; lane < lanes; ++lane) {
        ro.read(map.vec_v +
                    static_cast<memsim::addr_t>(col[off + lane]) * sd,
                sd);
      }
      transactions += static_cast<std::uint64_t>(lanes);
    }
    for (int lane = 0; lane < lanes; ++lane) {
      gl.write(map.vec_w +
                   static_cast<memsim::addr_t>(c * chunk + lane) * sd,
               sd);
    }
    transactions += (static_cast<std::uint64_t>(lanes) * sd + 31) / 32;
  }
}

/// SELL-32-style SpMMV: warp lanes own 32 different rows; each lane streams
/// its own block-vector row slice, so the R-wide accesses of the 32 lanes
/// scatter over 32 distinct rows instead of coalescing along one.
void sweep_spmmv_sell_warp(const sparse::CrsMatrix& a, int width,
                           memsim::GpuHierarchy& h,
                           std::uint64_t& transactions) {
  const Map map;
  const auto row_ptr = a.row_ptr();
  const auto col = a.col_idx();
  const std::uint32_t row_bytes = static_cast<std::uint32_t>(width) * sd;
  auto& ro = *h.readonly_path;
  auto& gl = *h.global_path;
  for (global_index warp_begin = 0; warp_begin < a.nrows();
       warp_begin += warp_size) {
    const global_index warp_end =
        std::min<global_index>(warp_begin + warp_size, a.nrows());
    local_index max_len = 0;
    for (global_index i = warp_begin; i < warp_end; ++i) {
      max_len = std::max(
          max_len, static_cast<local_index>(row_ptr[i + 1] - row_ptr[i]));
    }
    for (local_index j = 0; j < max_len; ++j) {
      for (global_index i = warp_begin; i < warp_end; ++i) {
        const global_index k = row_ptr[i] + j;
        if (k >= row_ptr[i + 1]) continue;
        ro.read(map.values + static_cast<memsim::addr_t>(k) * sd, sd);
        ro.read(map.col_idx + static_cast<memsim::addr_t>(k) * si, si);
        // The lane walks its private block row: R sequential scalar loads
        // that do NOT coalesce with the other lanes' rows — one transaction
        // per 16 B element plus the two scattered matrix operands.
        ro.read(map.vec_v + static_cast<memsim::addr_t>(col[k]) * row_bytes,
                row_bytes);
        transactions += 2 + static_cast<std::uint64_t>(width);
      }
    }
    for (global_index i = warp_begin; i < warp_end; ++i) {
      gl.write(map.vec_w + static_cast<memsim::addr_t>(i) * row_bytes,
               row_bytes);
      transactions += static_cast<std::uint64_t>(width);
    }
  }
}

double spmv_flops(const sparse::CrsMatrix& a) {
  return static_cast<double>(a.nnz()) *
         (flops_complex_add + flops_complex_mul);
}

}  // namespace

const char* format_name(GpuMatrixFormat f) {
  switch (f) {
    case GpuMatrixFormat::crs_scalar:
      return "CRS(scalar)";
    case GpuMatrixFormat::sell_warp:
      return "SELL-32";
  }
  return "?";
}

GpuTraffic trace_gpu_spmv_format(const sparse::CrsMatrix& a,
                                 GpuMatrixFormat format,
                                 memsim::GpuHierarchy& h, int warmup) {
  h.reset();
  // SELL built once outside the timed region (setup cost, not traffic).
  const sparse::SellMatrix sell =
      format == GpuMatrixFormat::sell_warp
          ? sparse::SellMatrix(a, warp_size, warp_size * 4)
          : sparse::SellMatrix();
  std::uint64_t transactions = 0;
  auto run = [&] {
    if (format == GpuMatrixFormat::crs_scalar) {
      sweep_spmv_crs_scalar(a, h, transactions);
    } else {
      sweep_spmv_sell_warp(sell, h, transactions);
    }
  };
  for (int i = 0; i < warmup; ++i) run();
  const auto tex0 = h.tex_bytes();
  const auto l20 = h.l2_bytes();
  const auto dram0 = h.dram_bytes();
  transactions = 0;
  run();
  GpuTraffic t;
  t.tex_bytes = h.tex_bytes() - tex0;
  t.l2_bytes = h.l2_bytes() - l20;
  t.dram_bytes = h.dram_bytes() - dram0;
  t.flops = spmv_flops(a);
  t.load_transactions = transactions;
  return t;
}

GpuTraffic trace_gpu_spmmv_format(const sparse::CrsMatrix& a, int width,
                                  GpuMatrixFormat format,
                                  memsim::GpuHierarchy& h, int warmup) {
  require(width >= 1, "trace_gpu_spmmv_format: width >= 1");
  if (format == GpuMatrixFormat::crs_scalar) {
    // Block-row mapping = the paper's kernel (trace_gpu_kernel).
    return trace_gpu_kernel(a, width, GpuKernel::simple_spmmv, h, warmup);
  }
  h.reset();
  std::uint64_t transactions = 0;
  for (int i = 0; i < warmup; ++i) sweep_spmmv_sell_warp(a, width, h, transactions);
  const auto tex0 = h.tex_bytes();
  const auto l20 = h.l2_bytes();
  const auto dram0 = h.dram_bytes();
  transactions = 0;
  sweep_spmmv_sell_warp(a, width, h, transactions);
  GpuTraffic t;
  t.tex_bytes = h.tex_bytes() - tex0;
  t.l2_bytes = h.l2_bytes() - l20;
  t.dram_bytes = h.dram_bytes() - dram0;
  t.flops = spmv_flops(a) * width;
  t.load_transactions = transactions;
  return t;
}

}  // namespace kpm::gpusim
