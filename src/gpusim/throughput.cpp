#include "gpusim/throughput.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kpm::gpusim {

GpuKernelPrediction predict_kernel(const GpuTraffic& t,
                                   const perfmodel::MachineSpec& m) {
  require(m.is_gpu, "predict_kernel: GPU machine spec required");
  const double giga = 1.0e9;
  const double t_dram = static_cast<double>(t.dram_bytes) / (m.mem_bw_gbs * giga);
  const double t_l2 = static_cast<double>(t.l2_bytes) / (m.llc_bw_gbs * giga);
  const double t_tex = static_cast<double>(t.tex_bytes) / (m.tex_bw_gbs * giga);
  const double t_compute = t.flops / (compute_efficiency * m.peak_gflops * giga);
  // Shuffle reductions execute on the SMX array at clock rate; they do not
  // overlap with the dependent accumulation chain.
  const double t_reduce =
      static_cast<double>(t.warp_reductions) * reduction_cycles /
      (static_cast<double>(m.cores) * m.clock_mhz * 1.0e6);

  GpuKernelPrediction p;
  p.seconds = t_dram;
  p.bottleneck = "DRAM";
  if (t_l2 > p.seconds) {
    p.seconds = t_l2;
    p.bottleneck = "L2";
  }
  if (t_tex > p.seconds) {
    p.seconds = t_tex;
    p.bottleneck = "TEX";
  }
  if (t_compute > p.seconds) {
    p.seconds = t_compute;
    p.bottleneck = "compute";
  }
  // Latency cost adds to (does not hide behind) the streaming time once the
  // kernel is no longer bandwidth-saturated.
  if (t_reduce > 0.0) {
    p.seconds += t_reduce;
    if (t_reduce > 0.5 * p.seconds) p.bottleneck = "latency";
  }
  p.gflops = t.flops / p.seconds / giga;
  p.dram_bw_gbs = static_cast<double>(t.dram_bytes) / p.seconds / giga;
  p.l2_bw_gbs = static_cast<double>(t.l2_bytes) / p.seconds / giga;
  p.tex_bw_gbs = static_cast<double>(t.tex_bytes) / p.seconds / giga;
  return p;
}

}  // namespace kpm::gpusim
