#include "core/ftlm.hpp"

#include <cmath>

#include "blas/level1.hpp"
#include "physics/dense_eigen.hpp"
#include "sparse/spmv.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::core {

Spectrum FtlmResult::density(double e_min, double e_max, int points,
                             double broadening) const {
  require(points >= 2 && e_max > e_min && broadening > 0.0,
          "FtlmResult::density: invalid grid");
  Spectrum out;
  out.energy.resize(static_cast<std::size_t>(points));
  out.density.assign(static_cast<std::size_t>(points), 0.0);
  const double norm = 1.0 / (broadening * std::sqrt(2.0 * pi));
  for (int k = 0; k < points; ++k) {
    const double e = e_min + (e_max - e_min) * k / (points - 1);
    out.energy[static_cast<std::size_t>(k)] = e;
    double acc = 0.0;
    for (std::size_t j = 0; j < ritz_values.size(); ++j) {
      const double d = (e - ritz_values[j]) / broadening;
      if (std::abs(d) < 8.0) acc += weights[j] * std::exp(-0.5 * d * d);
    }
    out.density[static_cast<std::size_t>(k)] = acc * norm;
  }
  return out;
}

FtlmResult ftlm_dos(const sparse::CrsMatrix& h, const FtlmParams& p) {
  require(h.nrows() == h.ncols(), "ftlm_dos: square matrix required");
  require(p.lanczos_steps >= 2 && p.num_random >= 1,
          "ftlm_dos: need >= 2 Lanczos steps and >= 1 random vector");
  const auto n = static_cast<std::size_t>(h.nrows());
  const int k_max = static_cast<int>(
      std::min<global_index>(p.lanczos_steps, h.nrows()));

  FtlmResult out;
  out.dimension = h.nrows();
  RandomVectorSource rng(p.seed, p.vector_kind);

  aligned_vector<complex_t> q(n), q_prev(n), w(n);
  std::vector<aligned_vector<complex_t>> basis;
  for (int r = 0; r < p.num_random; ++r) {
    rng.fill(q);
    std::fill(q_prev.begin(), q_prev.end(), complex_t{});
    basis.clear();
    if (p.full_reorthogonalization) basis.push_back(q);
    std::vector<double> alpha;
    std::vector<double> beta;
    for (int j = 0; j < k_max; ++j) {
      sparse::spmv(h, q, w);
      const complex_t a = blas::dot(q, w);
      alpha.push_back(a.real());
      blas::axpy(-a, q, w);
      if (j > 0) blas::axpy({-beta.back(), 0.0}, q_prev, w);
      if (p.full_reorthogonalization) {
        for (const auto& v : basis) {
          const complex_t overlap = blas::dot(v, w);
          blas::axpy(-overlap, v, w);
        }
      }
      const double b = blas::nrm2(w);
      if (b < 1e-13 || j == k_max - 1) break;
      beta.push_back(b);
      q_prev = q;
      for (std::size_t i = 0; i < n; ++i) q[i] = w[i] / b;
      if (p.full_reorthogonalization) basis.push_back(q);
    }
    // Ritz decomposition of the tridiagonal: theta_j and the squared first
    // components give delta(E - H) in the Krylov space.
    const int m = static_cast<int>(alpha.size());
    std::vector<double> tri(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) {
      tri[static_cast<std::size_t>(i) * m + i] =
          alpha[static_cast<std::size_t>(i)];
      if (i + 1 < m) {
        tri[static_cast<std::size_t>(i) * m + i + 1] =
            beta[static_cast<std::size_t>(i)];
        tri[static_cast<std::size_t>(i + 1) * m + i] =
            beta[static_cast<std::size_t>(i)];
      }
    }
    const auto es = physics::eigensystem_symmetric(std::move(tri), m);
    for (int j = 0; j < m; ++j) {
      const double first =
          es.eigenvectors[static_cast<std::size_t>(j) * m + 0];
      out.ritz_values.push_back(es.eigenvalues[static_cast<std::size_t>(j)]);
      // <r|r> = 1: weight per vector sums to 1; scale so the total is N/R
      // per vector => N overall.
      out.weights.push_back(first * first *
                            static_cast<double>(h.nrows()) /
                            static_cast<double>(p.num_random));
    }
  }
  return out;
}

}  // namespace kpm::core
