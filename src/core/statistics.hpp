// Stochastic-trace error estimation.
//
// The KPM trace tr[A]/N ~ (1/R) sum_r <v_r|A|v_r> carries a statistical
// error ~ 1/sqrt(R N) (paper Sec. II; Weisse et al. Sec. II.D).  The blocked
// solver keeps the per-vector moment columns, so the standard error of each
// averaged moment — and a pointwise error band of the reconstructed density
// — comes for free.
#pragma once

#include "core/moments.hpp"
#include "core/reconstruct.hpp"

namespace kpm::core {

struct MomentStatistics {
  std::vector<double> mean;            ///< = MomentsResult::mu
  std::vector<double> standard_error;  ///< per-moment sigma / sqrt(R)
  int num_random = 0;

  /// Largest standard error over all moments (headline accuracy figure).
  [[nodiscard]] double worst_error() const;
};

/// Per-moment statistics over the R per-vector columns.
[[nodiscard]] MomentStatistics moment_statistics(const MomentsResult& result);

/// Reconstructed density with a pointwise one-sigma error band, obtained by
/// reconstructing mean +- error moments (kernel damping applied as usual).
struct SpectrumWithErrors {
  Spectrum mean;
  std::vector<double> sigma;  ///< pointwise one-sigma band
};

[[nodiscard]] SpectrumWithErrors reconstruct_with_errors(
    const MomentsResult& result, const physics::Scaling& s,
    const ReconstructParams& p);

}  // namespace kpm::core
