// Reconstruction of spectral densities from Chebyshev moments.
//
// rho(x) = 1/(pi sqrt(1-x^2)) [ g_0 mu_0 + 2 sum_{m>=1} g_m mu_m T_m(x) ]
// in the Chebyshev variable x = a(E - b); the energy-space density carries
// the Jacobian a.  With unit-normalized random vectors mu_0 = 1 and the
// density integrates to 1; multiply by the matrix dimension N to count
// eigenvalues.
#pragma once

#include <span>
#include <vector>

#include "core/damping.hpp"
#include "physics/spectral_bounds.hpp"

namespace kpm::core {

struct Spectrum {
  std::vector<double> energy;
  std::vector<double> density;

  /// Trapezoid integral of the density over the energy grid.
  [[nodiscard]] double integral() const;
};

struct ReconstructParams {
  int num_points = 1024;
  DampingKernel kernel = DampingKernel::jackson;
  double lorentz_lambda = 4.0;
  /// Multiplies the density (e.g. N for an eigenvalue count density).
  double normalization = 1.0;
  /// Energy window; if both zero the full scaled interval is used (with a
  /// small margin to avoid the 1/sqrt(1-x^2) endpoints).
  double e_min = 0.0;
  double e_max = 0.0;
};

/// Evaluates the damped Chebyshev series of the density on an energy grid.
[[nodiscard]] Spectrum reconstruct_density(std::span<const double> mu,
                                           const physics::Scaling& s,
                                           const ReconstructParams& p);

/// Chebyshev series value sum_m (2 - delta_m0) g_m mu_m T_m(x) at one x
/// (without the 1/(pi sqrt(1-x^2)) envelope); Clenshaw recurrence.
[[nodiscard]] double chebyshev_series(std::span<const double> damped_mu,
                                      double x);

}  // namespace kpm::core
