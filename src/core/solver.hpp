// High-level KPM-DOS driver: matrix in, density of states out.
#pragma once

#include <optional>

#include "core/moments.hpp"
#include "core/reconstruct.hpp"
#include "physics/spectral_bounds.hpp"
#include "sparse/crs.hpp"

namespace kpm::core {

/// The paper's three implementation stages (Figs. 3-5).
enum class OptimizationStage { naive, aug_spmv, aug_spmmv };

[[nodiscard]] const char* stage_name(OptimizationStage stage);

struct DosParams {
  MomentParams moments;
  ReconstructParams reconstruct;
  OptimizationStage stage = OptimizationStage::aug_spmmv;
  /// Safety margin for the automatic (Lanczos-based) spectral interval.
  double scaling_epsilon = 0.05;
};

struct DosResult {
  Spectrum spectrum;
  MomentsResult moments;
  physics::Scaling scaling;
  double seconds = 0.0;  ///< wall time of the moment computation
};

/// Runs the KPM-DOS pipeline.  If `scaling` is not supplied it is derived
/// from a few Lanczos sweeps widened by `scaling_epsilon` (paper Sec. II).
/// The reconstruction normalization defaults to the matrix dimension N, so
/// the resulting density counts eigenvalues per unit energy.
[[nodiscard]] DosResult compute_dos(
    const sparse::CrsMatrix& h, DosParams p,
    std::optional<physics::Scaling> scaling = std::nullopt);

}  // namespace kpm::core
