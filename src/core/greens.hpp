// KPM Green's function (resolvent) — Weisse et al., Rev. Mod. Phys. 78,
// 275, Sec. II.C: with x = cos(theta) in the rescaled variable,
//
//   G(x -+ i0)  =  -+ i / sqrt(1 - x^2) * sum_m (2 - delta_m0) g_m mu_m
//                   e^{-+ i m theta},
//
// whose imaginary part is -pi * rho(x) (retarded branch) — the resolvent and
// the DOS come from the *same* moment sequence.  The Lorentz kernel is the
// natural damping here: it corresponds to a finite imaginary broadening
// eta ~ lambda / M in the rescaled variable.
#pragma once

#include <span>
#include <vector>

#include "core/damping.hpp"
#include "physics/spectral_bounds.hpp"
#include "util/types.hpp"

namespace kpm::core {

struct GreensParams {
  DampingKernel kernel = DampingKernel::lorentz;
  double lorentz_lambda = 4.0;
  /// +1: retarded G(E + i0) (Im G <= 0); -1: advanced G(E - i0).
  int branch = +1;
};

/// Retarded/advanced trace Green's function tr[G(E)]/N at the given
/// energies (each must map strictly inside (-1, 1)).
[[nodiscard]] std::vector<complex_t> greens_function(
    std::span<const double> mu, const physics::Scaling& s,
    std::span<const double> energies, const GreensParams& p = {});

/// Single-energy convenience.
[[nodiscard]] complex_t greens_function_at(std::span<const double> mu,
                                           const physics::Scaling& s,
                                           double energy,
                                           const GreensParams& p = {});

}  // namespace kpm::core
