#include "core/eigcount.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/types.hpp"

namespace kpm::core {

double eigenvalue_count(std::span<const double> mu, const physics::Scaling& s,
                        double dimension, double e_lo, double e_hi,
                        DampingKernel kernel) {
  require(!mu.empty(), "eigenvalue_count: empty moments");
  require(e_hi > e_lo, "eigenvalue_count: invalid interval");
  const double x1 = std::clamp(s.to_unit(e_lo), -1.0, 1.0);
  const double x2 = std::clamp(s.to_unit(e_hi), -1.0, 1.0);
  const double theta1 = std::acos(x1);  // theta decreases with x
  const double theta2 = std::acos(x2);

  std::vector<double> damped(mu.begin(), mu.end());
  apply_damping(kernel, damped);

  double acc = damped[0] * (theta1 - theta2) / pi;
  for (std::size_t m = 1; m < damped.size(); ++m) {
    const double dm = static_cast<double>(m);
    acc += 2.0 * damped[m] *
           (std::sin(dm * theta1) - std::sin(dm * theta2)) / (dm * pi);
  }
  return dimension * acc;
}

}  // namespace kpm::core
