// Damping kernels for the truncated Chebyshev expansion (Weisse et al.,
// Rev. Mod. Phys. 78, 275 (2006) — the "kernel" in Kernel Polynomial Method).
//
// Truncating the expansion at M moments produces Gibbs oscillations; the
// moments are multiplied by kernel coefficients g_m that turn the truncated
// series into a positive, resolution-broadened approximation.
#pragma once

#include <span>
#include <vector>

namespace kpm::core {

enum class DampingKernel {
  dirichlet,  ///< g_m = 1 (no damping; oscillatory, for diagnostics)
  jackson,    ///< optimal for DOS: positive, resolution ~ pi/M
  lorentz,    ///< exponential kernel for Green functions (lambda parameter)
};

/// Kernel coefficients g_0 .. g_{M-1}.
[[nodiscard]] std::vector<double> damping_coefficients(
    DampingKernel kernel, int num_moments, double lorentz_lambda = 4.0);

/// In-place application: mu[m] *= g_m.
void apply_damping(DampingKernel kernel, std::span<double> mu,
                   double lorentz_lambda = 4.0);

/// Energy resolution (FWHM-like broadening in the Chebyshev variable) that
/// the Jackson kernel delivers at M moments: sigma ~ pi / M.
[[nodiscard]] double jackson_resolution(int num_moments);

}  // namespace kpm::core
