// Finite-Temperature Lanczos Method (FTLM) density of states — the
// classical *algorithmic baseline* for stochastic spectral estimation
// (Jaklic & Prelovsek, PRB 49, 5065 (1994)): where KPM expands delta(E - H)
// in Chebyshev polynomials, FTLM approximates it by the Ritz values of a
// k-step Lanczos tridiagonalization per random vector,
//
//   rho(E) ~ (N/R) sum_r sum_j |<r|phi_j^(r)>|^2  delta_eta(E - theta_j^(r)),
//
// with Gaussian broadening eta.  Included so the benchmark harness can put
// the paper's method side by side with a real competitor: KPM needs only
// two vectors and a fixed iteration count; Lanczos needs reorthogonalization
// (or tolerates ghost eigenvalues) and resolves band interiors more slowly.
#pragma once

#include <cstdint>

#include "core/reconstruct.hpp"
#include "sparse/crs.hpp"
#include "util/random.hpp"

namespace kpm::core {

struct FtlmParams {
  int lanczos_steps = 64;   ///< k: Krylov dimension per random vector
  int num_random = 8;       ///< R
  std::uint64_t seed = 7;
  RandomVectorKind vector_kind = RandomVectorKind::phase;
  bool full_reorthogonalization = true;  ///< avoids ghost Ritz values
};

struct FtlmResult {
  /// Ritz values and stochastic weights, concatenated over random vectors.
  std::vector<double> ritz_values;
  std::vector<double> weights;  ///< sum over all ~= dimension N
  global_index dimension = 0;

  /// Gaussian-broadened density on an energy grid (integrates to N).
  [[nodiscard]] Spectrum density(double e_min, double e_max, int points,
                                 double broadening) const;
};

/// Runs R independent k-step Lanczos recursions and collects the Ritz
/// decomposition of the stochastic trace.
[[nodiscard]] FtlmResult ftlm_dos(const sparse::CrsMatrix& h,
                                  const FtlmParams& p);

}  // namespace kpm::core
