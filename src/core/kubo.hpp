// Kubo-Greenwood DC conductivity via two-dimensional Chebyshev moments —
// the flagship KPM application beyond the DOS (Weisse et al., Rev. Mod.
// Phys. 78, 275, Sec. V; the basis of modern linear-response KPM codes).
//
//   sigma(E)  ~  Tr[ J delta(E - H) J delta(E - H) ]
//
// with the current operator J.  Expanding both delta functions in Chebyshev
// polynomials of H~ = a(H - b·1) yields the 2D moment matrix
//
//   mu_nm = Tr[ T_n(H~) J T_m(H~) J ] / N,
//
// estimated stochastically like the KPM trace (or exactly, by summing over
// the full basis, for validation-sized systems).  Every T_m application is
// the same fused-kernel recurrence that powers the DOS solver.
//
// Memory note: this implementation stores the M vectors {J T_m(H~) J |r>}
// (O(M N) complex numbers) to reach O(M) SpMV per random vector; large-scale
// production codes would trade memory for recomputation.
#pragma once

#include <cstdint>

#include "core/damping.hpp"
#include "physics/anderson.hpp"
#include "physics/spectral_bounds.hpp"
#include "sparse/crs.hpp"
#include "util/random.hpp"

namespace kpm::core {

struct KuboParams {
  int num_moments = 64;  ///< M (both Chebyshev indices)
  int num_random = 8;    ///< R stochastic vectors
  std::uint64_t seed = 7;
  RandomVectorKind vector_kind = RandomVectorKind::phase;
  /// Exact trace over the full basis instead of random vectors
  /// (O(N M) SpMV — validation sizes only).
  bool deterministic_full_trace = false;
};

/// The 2D moment matrix mu_nm (row-major, order x order), normalized by N.
struct KuboMoments {
  std::vector<double> mu;
  int order = 0;
  global_index dimension = 0;

  [[nodiscard]] double at(int n, int m) const {
    return mu[static_cast<std::size_t>(n) * order + static_cast<std::size_t>(m)];
  }
};

/// Computes mu_nm for Hamiltonian `h` and Hermitian current operator `j`.
[[nodiscard]] KuboMoments kubo_moments(const sparse::CrsMatrix& h,
                                       const physics::Scaling& s,
                                       const sparse::CrsMatrix& j,
                                       const KuboParams& p);

struct ConductivityParams {
  int num_points = 256;
  DampingKernel kernel = DampingKernel::jackson;
  /// Margin from the interval edges where 1/(1-x^2) blows up.
  double edge_margin = 0.05;
};

struct ConductivityCurve {
  std::vector<double> energy;
  std::vector<double> sigma;  ///< arbitrary units (shape is the observable)
};

/// Kubo-Greenwood sigma(E) from the damped 2D moments:
/// sigma(x) ~ 1/(1-x^2) * sum_nm w_n w_m g_n g_m mu_nm T_n(x) T_m(x).
[[nodiscard]] ConductivityCurve kubo_conductivity(const KuboMoments& moments,
                                                  const physics::Scaling& s,
                                                  const ConductivityParams& p);

/// x-direction current operator of the Anderson lattice:
/// J = sum_bonds i t ( |i+x><i| - |i><i+x| ), Hermitian by construction.
[[nodiscard]] sparse::CrsMatrix current_operator_x(
    const physics::AndersonParams& p);

}  // namespace kpm::core
