#include "core/trace.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/types.hpp"

namespace kpm::core {

std::vector<double> chebyshev_coefficients(
    const std::function<double(double)>& f, const physics::Scaling& s,
    int order, int quadrature_points) {
  require(order >= 1, "chebyshev_coefficients: order >= 1");
  const int k_points =
      quadrature_points > 0 ? quadrature_points : 4 * order;
  require(k_points >= order,
          "chebyshev_coefficients: quadrature must resolve the order");
  // Chebyshev-Gauss nodes x_k = cos(pi (k + 1/2) / K): the weight
  // 1/sqrt(1-x^2) is absorbed, so c_m = (1/K) sum_k f(x_k) T_m(x_k) ... with
  // T_m(x_k) = cos(m theta_k).
  std::vector<double> c(static_cast<std::size_t>(order), 0.0);
  for (int k = 0; k < k_points; ++k) {
    const double theta = pi * (k + 0.5) / k_points;
    const double fx = f(s.to_energy(std::cos(theta)));
    for (int m = 0; m < order; ++m) {
      c[static_cast<std::size_t>(m)] += fx * std::cos(m * theta);
    }
  }
  for (auto& x : c) x /= static_cast<double>(k_points);
  return c;
}

double trace_function(std::span<const double> mu, const physics::Scaling& s,
                      double dimension,
                      const std::function<double(double)>& f,
                      const TraceParams& p) {
  require(!mu.empty(), "trace_function: empty moments");
  const int order = static_cast<int>(mu.size());
  const auto c =
      chebyshev_coefficients(f, s, order, p.quadrature_points);
  const auto g = damping_coefficients(p.kernel, order, p.lorentz_lambda);
  double acc = 0.0;
  for (int m = 0; m < order; ++m) {
    acc += (m == 0 ? 1.0 : 2.0) * g[static_cast<std::size_t>(m)] *
           mu[static_cast<std::size_t>(m)] * c[static_cast<std::size_t>(m)];
  }
  return dimension * acc;
}

double partition_function(std::span<const double> mu,
                          const physics::Scaling& s, double dimension,
                          double beta, const TraceParams& p) {
  return trace_function(
      mu, s, dimension, [beta](double e) { return std::exp(-beta * e); }, p);
}

double fermi_occupation(std::span<const double> mu, const physics::Scaling& s,
                        double dimension, double e_fermi, double beta,
                        const TraceParams& p) {
  return trace_function(
      mu, s, dimension,
      [beta, e_fermi](double e) {
        const double arg = beta * (e - e_fermi);
        // Avoid overflow for deep/far states.
        if (arg > 500.0) return 0.0;
        if (arg < -500.0) return 1.0;
        return 1.0 / (1.0 + std::exp(arg));
      },
      p);
}

}  // namespace kpm::core
