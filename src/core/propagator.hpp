// Chebyshev time propagation — the paper's outlook ("apply our findings and
// code to other blocked sparse linear algebra algorithms besides KPM").
//
// The evolution operator of the Schroedinger equation expands in Chebyshev
// polynomials of the rescaled Hamiltonian H~ = a(H - b·1) (Weisse et al.,
// Rev. Mod. Phys. 78, 275, Sec. "Time evolution"):
//
//   e^{-iHt} = e^{-ibt} [ c_0(z) + 2 sum_{m>=1} c_m(z) T_m(H~) ],
//   c_m(z) = (-i)^m J_m(z),   z = t / a,
//
// with Bessel functions J_m.  The T_m|v> terms come from the same two-term
// recurrence as KPM, so the same fused aug_spmv / aug_spmmv kernels drive
// it — including the blocked version that propagates many states at once
// (e.g. a wave-packet ensemble), which enjoys exactly the SpMMV traffic
// amortization of optimization stage 2.
#pragma once

#include <vector>

#include "blas/block_vector.hpp"
#include "physics/spectral_bounds.hpp"
#include "sparse/crs.hpp"

namespace kpm::core {

struct PropagatorParams {
  double time = 1.0;  ///< physical time step t
  /// Expansion order; 0 = automatic (z + safety margin, converges
  /// super-exponentially beyond m > z = t/a).
  int order = 0;
  /// Series terms below this magnitude are dropped (auto order).
  double tolerance = 1e-12;
};

/// Chebyshev approximation of |out> = e^{-iHt} |in> for Hermitian H with
/// spec(a(H-b)) in [-1,1].
void propagate(const sparse::CrsMatrix& h, const physics::Scaling& s,
               const PropagatorParams& p, std::span<const complex_t> in,
               std::span<complex_t> out);

/// Blocked version: propagates every column of `in` simultaneously through
/// the fused SpMMV recurrence (one matrix read per expansion order for the
/// whole block).
void propagate(const sparse::CrsMatrix& h, const physics::Scaling& s,
               const PropagatorParams& p, const blas::BlockVector& in,
               blas::BlockVector& out);

/// Expansion coefficients c_m(z) = (-i)^m J_m(z) for m = 0..order-1.
[[nodiscard]] std::vector<complex_t> chebyshev_time_coefficients(double z,
                                                                 int order);

/// Automatic expansion order for time parameter z = t/a and tolerance eps:
/// Bessel tails decay like (z/2)^m / m!, so a small margin past |z| suffices.
[[nodiscard]] int required_order(double z, double tolerance);

}  // namespace kpm::core
