#include "core/damping.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/types.hpp"

namespace kpm::core {

std::vector<double> damping_coefficients(DampingKernel kernel, int num_moments,
                                         double lorentz_lambda) {
  require(num_moments >= 1, "damping: need at least one moment");
  std::vector<double> g(static_cast<std::size_t>(num_moments));
  const int big_m = num_moments;
  switch (kernel) {
    case DampingKernel::dirichlet:
      for (auto& x : g) x = 1.0;
      break;
    case DampingKernel::jackson: {
      const double q = pi / (big_m + 1.0);
      for (int m = 0; m < big_m; ++m) {
        g[static_cast<std::size_t>(m)] =
            ((big_m - m + 1.0) * std::cos(q * m) +
             std::sin(q * m) / std::tan(q)) /
            (big_m + 1.0);
      }
      break;
    }
    case DampingKernel::lorentz: {
      const double denom = std::sinh(lorentz_lambda);
      for (int m = 0; m < big_m; ++m) {
        g[static_cast<std::size_t>(m)] =
            std::sinh(lorentz_lambda * (1.0 - static_cast<double>(m) / big_m)) /
            denom;
      }
      break;
    }
  }
  return g;
}

void apply_damping(DampingKernel kernel, std::span<double> mu,
                   double lorentz_lambda) {
  const auto g = damping_coefficients(kernel, static_cast<int>(mu.size()),
                                      lorentz_lambda);
  for (std::size_t m = 0; m < mu.size(); ++m) mu[m] *= g[m];
}

double jackson_resolution(int num_moments) {
  return pi / static_cast<double>(num_moments);
}

}  // namespace kpm::core
