// Eigenvalue counting in an interval via KPM (paper Sec. I: "eigenvalue
// counting for predetermination of sub-space sizes in projection-based
// eigensolvers", di Napoli/Polizzi/Saad 2013).
//
// The count is the integral of the KPM density over [e_lo, e_hi], evaluated
// analytically from the damped moments:
//   integral of T_m(x) / (pi sqrt(1-x^2)) over [x1, x2]
//     = (theta1 - theta2)/pi                   for m = 0
//     = (sin(m theta1) - sin(m theta2))/(m pi) for m >= 1,   theta = arccos x.
#pragma once

#include <span>

#include "core/damping.hpp"
#include "physics/spectral_bounds.hpp"

namespace kpm::core {

/// Expected number of eigenvalues in [e_lo, e_hi] from averaged moments of
/// unit-normalized random vectors; `dimension` is the matrix size N.
[[nodiscard]] double eigenvalue_count(std::span<const double> mu,
                                      const physics::Scaling& s,
                                      double dimension, double e_lo,
                                      double e_hi,
                                      DampingKernel kernel = DampingKernel::jackson);

}  // namespace kpm::core
