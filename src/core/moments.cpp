#include "core/moments.hpp"

#include <algorithm>

#include "blas/block_ops.hpp"
#include "blas/level1.hpp"
#include "core/sweep_session.hpp"
#include "sparse/kpm_kernels.hpp"
#include "sparse/spmv.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::core {
namespace {

void check_params(const MomentParams& p) {
  require(p.num_moments >= 2 && p.num_moments % 2 == 0,
          "moments: num_moments must be even and >= 2");
  require(p.num_random >= 1, "moments: num_random >= 1");
}

/// Converts an eta sequence (eta_0 .. eta_{M-1}) into moments in place:
/// mu_{2m} = 2 eta_{2m} - mu_0, mu_{2m+1} = 2 eta_{2m+1} - mu_1.
void eta_to_mu(std::vector<double>& eta) {
  const double mu0 = eta[0];
  const double mu1 = eta.size() > 1 ? eta[1] : 0.0;
  for (std::size_t m = 2; m < eta.size(); ++m) {
    eta[m] = 2.0 * eta[m] - (m % 2 == 0 ? mu0 : mu1);
  }
}

void average_columns(MomentsResult& out, int num_moments, int num_random) {
  out.mu.assign(static_cast<std::size_t>(num_moments), 0.0);
  for (const auto& col : out.per_vector) {
    for (std::size_t m = 0; m < out.mu.size(); ++m) out.mu[m] += col[m];
  }
  for (auto& x : out.mu) x /= static_cast<double>(num_random);
}

}  // namespace

MomentsResult moments_naive(const sparse::CrsMatrix& h,
                            const physics::Scaling& s, const MomentParams& p) {
  check_params(p);
  const auto n = static_cast<std::size_t>(h.nrows());
  MomentsResult out;
  out.dimension = h.nrows();
  RandomVectorSource rng(p.seed, p.vector_kind);
  aligned_vector<complex_t> v(n), w(n), u(n);

  for (int r = 0; r < p.num_random; ++r) {
    std::vector<double> eta(static_cast<std::size_t>(p.num_moments), 0.0);
    rng.fill(v);
    // Initialization: w = H~ v0 = a(H v0 - b v0), eta_0 = <v0|v0>,
    // eta_1 = <w|v0>; each BLAS call counted as in Table I.
    sparse::spmv(h, v, u);                      // u = H v
    blas::axpy({-s.b, 0.0}, v, u);              // u = u - b v
    blas::set_zero(w);
    blas::axpy({s.a, 0.0}, u, w);               // w = a u
    eta[0] = blas::dot_self(v);                 // nrm2()^2
    out.ops.global_reductions += 1;
    if (p.num_moments > 1) {
      eta[1] = blas::dot(w, v).real();          // dot()
      out.ops.global_reductions += 1;
    }
    out.ops.spmv_equivalents += 1;
    out.ops.matrix_streams += 1;

    // Inner loop, Fig. 3: one SpMV plus five BLAS-1 sweeps per step.
    for (int m = 1; 2 * m + 1 < p.num_moments; ++m) {
      std::swap(v, w);                          // v = v_m, w = v_{m-1}
      sparse::spmv(h, v, u);                    // u = H v        spmv()
      blas::axpy({-s.b, 0.0}, v, u);            // u = u - b v    axpy()
      blas::scal({-1.0, 0.0}, w);               // w = -w         scal()
      blas::axpy({2.0 * s.a, 0.0}, u, w);       // w = w + 2a u   axpy()
      eta[static_cast<std::size_t>(2 * m)] = blas::dot_self(v);      // nrm2()
      eta[static_cast<std::size_t>(2 * m + 1)] =
          blas::dot(w, v).real();                                    // dot()
      out.ops.spmv_equivalents += 1;
      out.ops.matrix_streams += 1;
      out.ops.global_reductions += 2;
    }
    eta_to_mu(eta);
    out.per_vector.push_back(std::move(eta));
  }
  average_columns(out, p.num_moments, p.num_random);
  return out;
}

namespace {

template <class Matrix>
MomentsResult moments_aug_spmv_impl(const Matrix& h, const physics::Scaling& s,
                                    const MomentParams& p, bool permute) {
  check_params(p);
  const auto n = static_cast<std::size_t>(h.nrows());
  MomentsResult out;
  out.dimension = h.nrows();
  RandomVectorSource rng(p.seed, p.vector_kind);
  aligned_vector<complex_t> v(n), w(n), tmp(n);

  for (int r = 0; r < p.num_random; ++r) {
    std::vector<double> eta(static_cast<std::size_t>(p.num_moments), 0.0);
    if (permute) {
      // SELL kernels act in the permuted numbering; generate in original
      // order (same seed stream as CRS) and permute for exact equivalence.
      rng.fill(tmp);
      if constexpr (std::is_same_v<Matrix, sparse::SellMatrix>) {
        h.permute(tmp, v);
      }
    } else {
      rng.fill(v);
    }
    complex_t dvv{}, dwv{};
    // Start-up: w = a(H - b1)v, eta_0/eta_1 on the fly (gamma = 0 makes the
    // kernel ignore the old w contents).
    sparse::aug_spmv(h, sparse::AugScalars::startup(s.a, s.b), v, w, &dvv,
                     &dwv);
    eta[0] = dvv.real();
    if (p.num_moments > 1) eta[1] = dwv.real();
    out.ops.spmv_equivalents += 1;
    out.ops.matrix_streams += 1;

    const auto rec = sparse::AugScalars::recurrence(s.a, s.b);
    for (int m = 1; 2 * m + 1 < p.num_moments; ++m) {
      std::swap(v, w);
      sparse::aug_spmv(h, rec, v, w, &dvv, &dwv);
      eta[static_cast<std::size_t>(2 * m)] = dvv.real();
      eta[static_cast<std::size_t>(2 * m + 1)] = dwv.real();
      out.ops.spmv_equivalents += 1;
      out.ops.matrix_streams += 1;
    }
    // One global reduction per random vector (end of the inner loop).
    out.ops.global_reductions += 1;
    eta_to_mu(eta);
    out.per_vector.push_back(std::move(eta));
  }
  average_columns(out, p.num_moments, p.num_random);
  return out;
}

template <class Matrix>
MomentsResult moments_aug_spmmv_impl(const Matrix& h,
                                     const physics::Scaling& s,
                                     const MomentParams& p, bool permute) {
  check_params(p);
  const global_index n = h.nrows();
  const int width = p.num_random;
  MomentsResult out;
  out.dimension = n;
  RandomVectorSource rng(p.seed, p.vector_kind);

  blas::BlockVector v(n, width), w(n, width);
  {
    // Same per-column random streams as the single-vector stages.
    aligned_vector<complex_t> col(static_cast<std::size_t>(n));
    aligned_vector<complex_t> perm_col(static_cast<std::size_t>(n));
    for (int r = 0; r < width; ++r) {
      rng.fill(col);
      if (permute) {
        if constexpr (std::is_same_v<Matrix, sparse::SellMatrix> ||
                      std::is_same_v<Matrix, sparse::SellBlockMatrix>) {
          h.permute(col, perm_col);
          v.set_column(r, perm_col);
          continue;
        }
      }
      v.set_column(r, col);
    }
  }

  std::vector<complex_t> dvv(static_cast<std::size_t>(width));
  std::vector<complex_t> dwv(static_cast<std::size_t>(width));
  std::vector<std::vector<double>> eta(
      static_cast<std::size_t>(width),
      std::vector<double>(static_cast<std::size_t>(p.num_moments), 0.0));

  sparse::aug_spmmv(h, sparse::AugScalars::startup(s.a, s.b), v, w, dvv, dwv);
  for (int r = 0; r < width; ++r) {
    eta[static_cast<std::size_t>(r)][0] = dvv[static_cast<std::size_t>(r)].real();
    if (p.num_moments > 1) {
      eta[static_cast<std::size_t>(r)][1] =
          dwv[static_cast<std::size_t>(r)].real();
    }
  }
  out.ops.spmv_equivalents += width;
  out.ops.matrix_streams += 1;
  if (p.reduction == ReductionMode::per_iteration) out.ops.global_reductions += 1;

  const auto rec = sparse::AugScalars::recurrence(s.a, s.b);
  for (int m = 1; 2 * m + 1 < p.num_moments; ++m) {
    std::swap(v, w);
    sparse::aug_spmmv(h, rec, v, w, dvv, dwv);
    for (int r = 0; r < width; ++r) {
      eta[static_cast<std::size_t>(r)][static_cast<std::size_t>(2 * m)] =
          dvv[static_cast<std::size_t>(r)].real();
      eta[static_cast<std::size_t>(r)][static_cast<std::size_t>(2 * m + 1)] =
          dwv[static_cast<std::size_t>(r)].real();
    }
    out.ops.spmv_equivalents += width;
    out.ops.matrix_streams += 1;
    if (p.reduction == ReductionMode::per_iteration) {
      out.ops.global_reductions += 1;
    }
  }
  if (p.reduction == ReductionMode::at_end) out.ops.global_reductions += 1;

  for (auto& column : eta) {
    eta_to_mu(column);
    out.per_vector.push_back(std::move(column));
  }
  average_columns(out, p.num_moments, p.num_random);
  return out;
}

}  // namespace

MomentsResult moments_aug_spmv(const sparse::CrsMatrix& h,
                               const physics::Scaling& s,
                               const MomentParams& p) {
  return moments_aug_spmv_impl(h, s, p, /*permute=*/false);
}

MomentsResult moments_aug_spmv(const sparse::SellMatrix& h,
                               const physics::Scaling& s,
                               const MomentParams& p) {
  return moments_aug_spmv_impl(h, s, p, /*permute=*/true);
}

namespace {

// Session-backed stochastic-trace run: the same object the multi-tenant
// service advances chunk by chunk, so "the service path" and "the library
// path" are one code path and bitwise-identical by construction.
MomentsResult moments_via_session(OperatorRef h, const physics::Scaling& s,
                                  const MomentParams& p) {
  check_params(p);
  const global_index n = h.nrows();
  const int width = p.num_random;
  RandomVectorSource rng(p.seed, p.vector_kind);
  blas::BlockVector v0(n, width);
  {
    aligned_vector<complex_t> col(static_cast<std::size_t>(n));
    for (int r = 0; r < width; ++r) {
      rng.fill(col);
      v0.set_column(r, col);
    }
  }
  SweepSession session(h, s, v0, p.num_moments);
  session.advance_all();

  MomentsResult out;
  out.dimension = n;
  for (int r = 0; r < width; ++r) {
    const auto mu = session.mu(r);
    out.per_vector.emplace_back(mu.begin(), mu.end());
  }
  out.ops.spmv_equivalents = session.lanes_swept();
  out.ops.matrix_streams = session.steps();
  out.ops.global_reductions =
      p.reduction == ReductionMode::per_iteration ? session.steps() : 1;
  average_columns(out, p.num_moments, p.num_random);
  return out;
}

}  // namespace

MomentsResult moments_aug_spmmv(const sparse::CrsMatrix& h,
                                const physics::Scaling& s,
                                const MomentParams& p) {
  return moments_via_session(h, s, p);
}

MomentsResult moments_aug_spmmv(const sparse::StencilOperator& h,
                                const physics::Scaling& s,
                                const MomentParams& p) {
  return moments_via_session(h, s, p);
}

MomentsResult moments_aug_spmmv(const sparse::SellMatrix& h,
                                const physics::Scaling& s,
                                const MomentParams& p) {
  return moments_aug_spmmv_impl(h, s, p, /*permute=*/true);
}

MomentsResult moments_aug_spmmv(const sparse::BsrMatrix& h,
                                const physics::Scaling& s,
                                const MomentParams& p) {
  return moments_aug_spmmv_impl(h, s, p, /*permute=*/false);
}

MomentsResult moments_aug_spmmv(const sparse::SellBlockMatrix& h,
                                const physics::Scaling& s,
                                const MomentParams& p) {
  return moments_aug_spmmv_impl(h, s, p, /*permute=*/true);
}

std::vector<double> moments_of_vector(const sparse::CrsMatrix& h,
                                      const physics::Scaling& s,
                                      std::span<const complex_t> v0,
                                      int num_moments) {
  require(num_moments >= 2 && num_moments % 2 == 0,
          "moments_of_vector: num_moments must be even and >= 2");
  const auto n = static_cast<std::size_t>(h.nrows());
  require(v0.size() == n, "moments_of_vector: size mismatch");
  aligned_vector<complex_t> v(v0.begin(), v0.end());
  aligned_vector<complex_t> w(n);
  std::vector<double> eta(static_cast<std::size_t>(num_moments), 0.0);
  complex_t dvv{}, dwv{};
  sparse::aug_spmv(h, sparse::AugScalars::startup(s.a, s.b), v, w, &dvv, &dwv);
  eta[0] = dvv.real();
  if (num_moments > 1) eta[1] = dwv.real();
  const auto rec = sparse::AugScalars::recurrence(s.a, s.b);
  for (int m = 1; 2 * m + 1 < num_moments; ++m) {
    std::swap(v, w);
    sparse::aug_spmv(h, rec, v, w, &dvv, &dwv);
    eta[static_cast<std::size_t>(2 * m)] = dvv.real();
    eta[static_cast<std::size_t>(2 * m + 1)] = dwv.real();
  }
  eta_to_mu(eta);
  return eta;
}

std::vector<std::vector<double>> moments_of_block(OperatorRef h,
                                                  const physics::Scaling& s,
                                                  const blas::BlockVector& v0,
                                                  int num_moments) {
  // One uninterrupted SweepSession — the reference run every chunked /
  // resumed / coalesced service solve must (and does) match bitwise.
  SweepSession session(h, s, v0, num_moments);
  session.advance_all();
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(v0.width()));
  for (int r = 0; r < v0.width(); ++r) {
    const auto mu = session.mu(r);
    out.emplace_back(mu.begin(), mu.end());
  }
  return out;
}

}  // namespace kpm::core
