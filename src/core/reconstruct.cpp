#include "core/reconstruct.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace kpm::core {

double Spectrum::integral() const { return trapezoid(energy, density); }

double chebyshev_series(std::span<const double> damped_mu, double x) {
  // Clenshaw for sum_m c_m T_m(x) with c_0 = mu_0, c_m = 2 mu_m (m >= 1).
  double b1 = 0.0;
  double b2 = 0.0;
  for (std::size_t m = damped_mu.size(); m-- > 1;) {
    const double b0 = 2.0 * damped_mu[m] + 2.0 * x * b1 - b2;
    b2 = b1;
    b1 = b0;
  }
  return damped_mu.empty() ? 0.0 : damped_mu[0] + x * b1 - b2;
}

Spectrum reconstruct_density(std::span<const double> mu,
                             const physics::Scaling& s,
                             const ReconstructParams& p) {
  require(!mu.empty(), "reconstruct: empty moment vector");
  require(p.num_points >= 2, "reconstruct: need at least 2 grid points");

  std::vector<double> damped(mu.begin(), mu.end());
  apply_damping(p.kernel, damped, p.lorentz_lambda);

  double e_min = p.e_min;
  double e_max = p.e_max;
  if (e_min == 0.0 && e_max == 0.0) {
    // Stay strictly inside the scaled interval: |x| <= 0.999 keeps the
    // 1/sqrt(1-x^2) envelope finite.
    e_min = s.to_energy(-0.999);
    e_max = s.to_energy(0.999);
  }
  require(e_max > e_min, "reconstruct: invalid energy window");

  Spectrum out;
  out.energy.resize(static_cast<std::size_t>(p.num_points));
  out.density.resize(static_cast<std::size_t>(p.num_points));
  for (int k = 0; k < p.num_points; ++k) {
    const double e =
        e_min + (e_max - e_min) * k / static_cast<double>(p.num_points - 1);
    const double x = s.to_unit(e);
    out.energy[static_cast<std::size_t>(k)] = e;
    if (std::abs(x) >= 1.0) {
      out.density[static_cast<std::size_t>(k)] = 0.0;
      continue;
    }
    const double series = chebyshev_series(damped, x);
    // Jacobian dx/dE = a maps the unit-interval density to energy space.
    out.density[static_cast<std::size_t>(k)] =
        p.normalization * s.a * series / (pi * std::sqrt(1.0 - x * x));
  }
  return out;
}

}  // namespace kpm::core
