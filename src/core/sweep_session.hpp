// Resumable, cancellable KPM sweep state — the enabling refactor for the
// batched multi-tenant service (DESIGN.md §5g).
//
// A SweepSession owns the two-term Chebyshev recurrence state of one blocked
// sweep: the |v>, |w> block vectors, the per-lane moment prefixes, and the
// next recurrence step.  It advances in chunks of steps (each step is one
// fused aug_spmmv and yields two moments per lane), so a caller can stream
// partial moments out between chunks, stop early, or checkpoint the whole
// state and finish later.  The step sequence is exactly the one
// moments_of_block() / moments_aug_spmmv() perform — moments_of_block() is
// in fact implemented as "advance a session to completion" — so a chunked,
// resumed, or checkpoint-restored session produces bitwise-identical moments
// to an uninterrupted run.
//
// Lanes.  The block columns ("lanes") of a session are fully independent:
// the fused kernels keep one accumulator per column and the row->thread
// split (util/schedule.hpp) does not depend on the block width, so the
// moment bits of a lane depend only on that lane's start vector — not on
// which other lanes share the sweep or how wide it is.  This is what makes
// multi-tenant coalescing legal: unrelated jobs ride one matrix stream and
// still get the exact bits a solo sweep would have produced.  A lane whose
// consumer is done (early stop, cancellation) can be deactivated; compact()
// then drops the dead lanes from the kernel block so the remaining jobs
// sweep at the narrower width, without perturbing their bits.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "blas/block_vector.hpp"
#include "physics/spectral_bounds.hpp"
#include "sparse/bsr.hpp"
#include "sparse/crs.hpp"
#include "sparse/kpm_kernels.hpp"
#include "sparse/sell_block.hpp"
#include "sparse/stencil.hpp"
#include "util/types.hpp"

namespace kpm::core {

/// Non-owning reference to any operator the fused block kernels can sweep:
/// assembled CRS, the block formats of DESIGN.md §5f, or the matrix-free
/// stencil of §5h.  Implicitly convertible from each concrete type so the
/// original CRS-only call sites compile unchanged.  The pointee must outlive
/// the reference (sessions and service models hold the operator elsewhere).
class OperatorRef {
 public:
  enum class Kind { crs, bsr, sell_block, stencil };

  OperatorRef(const sparse::CrsMatrix& m) : kind_(Kind::crs), p_(&m) {}
  OperatorRef(const sparse::BsrMatrix& m) : kind_(Kind::bsr), p_(&m) {}
  OperatorRef(const sparse::SellBlockMatrix& m)
      : kind_(Kind::sell_block), p_(&m) {}
  OperatorRef(const sparse::StencilOperator& m)
      : kind_(Kind::stencil), p_(&m) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] global_index nrows() const noexcept;
  [[nodiscard]] global_index ncols() const noexcept;
  [[nodiscard]] global_index nnz() const noexcept;

  /// Valid only when kind() matches.
  [[nodiscard]] const sparse::SellBlockMatrix& sell_block() const noexcept {
    return *static_cast<const sparse::SellBlockMatrix*>(p_);
  }
  [[nodiscard]] const sparse::CrsMatrix& crs() const noexcept {
    return *static_cast<const sparse::CrsMatrix*>(p_);
  }
  [[nodiscard]] const sparse::BsrMatrix& bsr() const noexcept {
    return *static_cast<const sparse::BsrMatrix*>(p_);
  }
  [[nodiscard]] const sparse::StencilOperator& stencil() const noexcept {
    return *static_cast<const sparse::StencilOperator*>(p_);
  }

  /// One fused augmented SpMMV on the referenced operator.
  void apply(const sparse::AugScalars& s, const blas::BlockVector& v,
             blas::BlockVector& w, std::span<complex_t> dot_vv,
             std::span<complex_t> dot_wv) const;

 private:
  Kind kind_;
  const void* p_;
};

/// Digest of (operator identity, spectral scaling) used to pair checkpoints
/// with the operator that produced them.  FNV-1a over the operator kind,
/// shape, nnz, the bit patterns of the scaling (a, b), and the FULL stored
/// content of the operator — structure and value bits for every format
/// (CRS rows, BSR/SELL block streams, stencil terms/diagonal/boundary) —
/// so two same-shaped operators with different entries always get different
/// prints.  The service's cache keys and the checkpoint restore guards rely
/// on this being a content digest, not just a shape digest.
/// Never returns 0 (0 is the "unknown / legacy checkpoint" sentinel).
[[nodiscard]] std::uint64_t operator_fingerprint(OperatorRef h,
                                                 const physics::Scaling& s);

/// Serializable recurrence state (checkpoint/restart of a SweepSession).
/// The matrix and scaling themselves are not captured, but `fingerprint`
/// records which (operator, scaling) pair produced the state: restoring
/// against anything else is rejected instead of silently producing wrong
/// moments.  fingerprint == 0 marks a legacy checkpoint and is accepted.
struct SweepCheckpoint {
  blas::BlockVector v;                  ///< |v_m> lanes (current width)
  blas::BlockVector w;                  ///< |v_{m+1}> lanes (current width)
  std::vector<std::vector<double>> mu;  ///< per-lane completed moment prefix
  std::vector<int> lane_of_column;      ///< kernel column -> original lane
  std::vector<char> active;             ///< per original lane
  int num_moments = 0;
  int next_step = 0;  ///< 0 = start-up step still pending
  std::uint64_t fingerprint = 0;  ///< operator_fingerprint() of the producer
};

class SweepSession {
 public:
  /// Starts a fresh sweep: lane r of `v0` is the start vector |v0_r>.
  /// Requires a square operator, a row-major block, v0.rows() == h.nrows(),
  /// and an even num_moments >= 2.  `v0` is always given in the *original*
  /// row numbering; a SELL-block operator permutes it on entry (its kernels
  /// act in the permuted numbering), every other format copies it verbatim.
  SweepSession(OperatorRef h, const physics::Scaling& s,
               const blas::BlockVector& v0, int num_moments);

  /// Resumes from a checkpoint taken against the same operator + scaling.
  /// Checkpoint vectors are in the operator's working numbering (already
  /// permuted for SELL-block), exactly as checkpoint() captured them.
  SweepSession(OperatorRef h, const physics::Scaling& s,
               SweepCheckpoint state);

  SweepSession(SweepSession&&) = default;
  SweepSession& operator=(SweepSession&&) = default;

  /// Advances up to `max_steps` recurrence steps (one fused sweep each, two
  /// moments per lane) and returns completed().  Stops early when the
  /// session is done().
  int advance(int max_steps);
  int advance_all();

  /// Moments completed per lane so far (0 .. num_moments).
  [[nodiscard]] int completed() const noexcept;
  /// True when every moment is computed or no lane is active anymore.
  [[nodiscard]] bool done() const noexcept;

  [[nodiscard]] int num_moments() const noexcept { return num_moments_; }
  /// Number of lanes the session was started with (stable lane ids).
  [[nodiscard]] int lanes() const noexcept {
    return static_cast<int>(active_.size());
  }
  [[nodiscard]] int active_lanes() const noexcept;
  /// Width the kernels currently sweep at (shrinks after compact()).
  [[nodiscard]] int sweep_width() const noexcept { return v_.width(); }

  /// Completed moment prefix of `lane` (valid across advance() calls; may
  /// be longer than a consumer's requested M when lanes share a sweep).
  [[nodiscard]] std::span<const double> mu(int lane) const;

  /// Marks a lane as no longer consumed: its moment prefix freezes and the
  /// next compact() drops it from the kernel block.  Idempotent.
  void deactivate_lane(int lane);

  /// Rebuilds the kernel block with only the active lanes, narrowing the
  /// sweep width.  Per-lane moments are unaffected (lane arithmetic is
  /// width-independent, see the header comment).  Returns true if the
  /// width changed.  No-op when every lane is active or none is.
  bool compact();

  /// Copies the full recurrence state for a later restore.
  [[nodiscard]] SweepCheckpoint checkpoint() const;

  /// Fused sweeps performed by this session (matrix streams).
  [[nodiscard]] long long steps() const noexcept { return steps_; }
  /// Sum of the sweep width over all performed steps (lane-steps).
  [[nodiscard]] long long lanes_swept() const noexcept { return lanes_swept_; }

 private:
  void record_step(int m);
  [[nodiscard]] std::uint64_t fingerprint() const;

  OperatorRef h_;
  physics::Scaling s_{};
  /// operator_fingerprint(h_, s_), computed on first checkpoint() and cached
  /// (the digest walks the operator's stored content once — O(nnz)).
  mutable std::optional<std::uint64_t> fingerprint_;
  int num_moments_ = 0;
  int next_step_ = 0;
  blas::BlockVector v_, w_;
  std::vector<int> lane_of_column_;
  std::vector<std::vector<double>> mu_;
  std::vector<char> active_;
  std::vector<complex_t> dvv_, dwv_;
  long long steps_ = 0;
  long long lanes_swept_ = 0;
};

}  // namespace kpm::core
