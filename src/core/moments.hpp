// Chebyshev moment computation — the three optimization stages of the paper.
//
//   Stage 0  moments_naive()      Fig. 3: SpMV + chain of BLAS-1 calls
//   Stage 1  moments_aug_spmv()   Fig. 4: one fused aug_spmv() per step
//   Stage 2  moments_aug_spmmv()  Fig. 5: blocked aug_spmmv() over all R
//
// All stages compute identical moment sequences (up to floating-point
// round-off); they differ only in data traffic.  The moments are
//   mu_m = (1/R) sum_r <v0_r | T_m(H~) | v0_r>,  H~ = a(H - b·1),
// recovered from the on-the-fly products via the Chebyshev doubling
// identities mu_{2m} = 2 eta_{2m} - mu_0 and mu_{2m+1} = 2 eta_{2m+1} - mu_1
// with eta_{2m} = <v_m|v_m>, eta_{2m+1} = <v_{m+1}|v_m>.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sweep_session.hpp"
#include "physics/spectral_bounds.hpp"
#include "sparse/bsr.hpp"
#include "sparse/crs.hpp"
#include "sparse/sell.hpp"
#include "sparse/sell_block.hpp"
#include "sparse/stencil.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace kpm::core {

/// When the distributed/blocked solver synchronizes its dot products.
/// `at_end` is the paper's optimal variant (one global reduction after the
/// loop); `per_iteration` is the aug_spmmv* variant of Table III.
enum class ReductionMode { at_end, per_iteration };

struct MomentParams {
  int num_moments = 512;  ///< M (even, >= 2); moments mu_0 .. mu_{M-1}
  int num_random = 8;     ///< R random vectors for the stochastic trace
  std::uint64_t seed = 7;
  RandomVectorKind vector_kind = RandomVectorKind::phase;
  ReductionMode reduction = ReductionMode::at_end;
};

/// Resource counters mirroring the paper's traffic accounting.
struct OpCounters {
  long long spmv_equivalents = 0;   ///< single-vector SpMV applications
  long long matrix_streams = 0;     ///< times the matrix is read end-to-end
  long long global_reductions = 0;  ///< synchronizing reduction events
};

struct MomentsResult {
  std::vector<double> mu;                        ///< averaged, size M
  std::vector<std::vector<double>> per_vector;   ///< R x M (before averaging)
  global_index dimension = 0;
  OpCounters ops;
};

// --- Stage 0: naive pipeline (CRS only; the baseline) -----------------------
[[nodiscard]] MomentsResult moments_naive(const sparse::CrsMatrix& h,
                                          const physics::Scaling& s,
                                          const MomentParams& p);

// --- Stage 1: fused augmented SpMV ------------------------------------------
[[nodiscard]] MomentsResult moments_aug_spmv(const sparse::CrsMatrix& h,
                                             const physics::Scaling& s,
                                             const MomentParams& p);
[[nodiscard]] MomentsResult moments_aug_spmv(const sparse::SellMatrix& h,
                                             const physics::Scaling& s,
                                             const MomentParams& p);

// --- Stage 2: blocked augmented SpMMV ---------------------------------------
[[nodiscard]] MomentsResult moments_aug_spmmv(const sparse::CrsMatrix& h,
                                              const physics::Scaling& s,
                                              const MomentParams& p);
[[nodiscard]] MomentsResult moments_aug_spmmv(const sparse::SellMatrix& h,
                                              const physics::Scaling& s,
                                              const MomentParams& p);
/// Block-format variants (DESIGN.md §5f): same pipeline on BSR / SELL-block
/// storage, including the mixed-precision (f32-value) matrix path — the
/// random-vector streams and accumulator precision are unchanged.
[[nodiscard]] MomentsResult moments_aug_spmmv(const sparse::BsrMatrix& h,
                                              const physics::Scaling& s,
                                              const MomentParams& p);
[[nodiscard]] MomentsResult moments_aug_spmmv(const sparse::SellBlockMatrix& h,
                                              const physics::Scaling& s,
                                              const MomentParams& p);
/// Matrix-free stencil variant (DESIGN.md §5h): runs on the same
/// SweepSession as the CRS overload, so its moments are bitwise identical
/// to the assembled-CRS moments of the same model.
[[nodiscard]] MomentsResult moments_aug_spmmv(const sparse::StencilOperator& h,
                                              const physics::Scaling& s,
                                              const MomentParams& p);

/// Moments <v0|T_m(H~)|v0> of one prescribed start vector (LDOS, spectral
/// function).  `v0` need not be normalized; moments scale with <v0|v0>.
[[nodiscard]] std::vector<double> moments_of_vector(
    const sparse::CrsMatrix& h, const physics::Scaling& s,
    std::span<const complex_t> v0, int num_moments);

/// Block version: one prescribed start vector per block column.  Accepts any
/// sweepable operator (CRS, BSR, SELL-block, stencil) via OperatorRef.
[[nodiscard]] std::vector<std::vector<double>> moments_of_block(
    OperatorRef h, const physics::Scaling& s, const blas::BlockVector& v0,
    int num_moments);

}  // namespace kpm::core
