#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kpm::core {

double MomentStatistics::worst_error() const {
  return standard_error.empty()
             ? 0.0
             : *std::max_element(standard_error.begin(),
                                 standard_error.end());
}

MomentStatistics moment_statistics(const MomentsResult& result) {
  require(!result.per_vector.empty(),
          "moment_statistics: per-vector moments required");
  const auto r = result.per_vector.size();
  const auto m_count = result.mu.size();
  MomentStatistics out;
  out.mean = result.mu;
  out.num_random = static_cast<int>(r);
  out.standard_error.assign(m_count, 0.0);
  if (r < 2) return out;  // no variance estimate from one sample
  for (std::size_t m = 0; m < m_count; ++m) {
    double var = 0.0;
    for (const auto& column : result.per_vector) {
      const double d = column[m] - result.mu[m];
      var += d * d;
    }
    var /= static_cast<double>(r - 1);
    out.standard_error[m] = std::sqrt(var / static_cast<double>(r));
  }
  return out;
}

SpectrumWithErrors reconstruct_with_errors(const MomentsResult& result,
                                           const physics::Scaling& s,
                                           const ReconstructParams& p) {
  require(!result.per_vector.empty(),
          "reconstruct_with_errors: per-vector moments required");
  SpectrumWithErrors out;
  out.mean = reconstruct_density(result.mu, s, p);
  const auto r = result.per_vector.size();
  out.sigma.assign(out.mean.density.size(), 0.0);
  if (r < 2) return out;
  // Pointwise variance over the per-vector reconstructions.
  for (const auto& column : result.per_vector) {
    const auto spec = reconstruct_density(column, s, p);
    for (std::size_t k = 0; k < out.sigma.size(); ++k) {
      const double d = spec.density[k] - out.mean.density[k];
      out.sigma[k] += d * d;
    }
  }
  for (auto& sg : out.sigma) {
    sg = std::sqrt(sg / static_cast<double>(r - 1) / static_cast<double>(r));
  }
  return out;
}

}  // namespace kpm::core
