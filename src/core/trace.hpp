// Trace of arbitrary matrix functions from KPM moments.
//
// For any f whose Chebyshev expansion converges on the spectral interval,
//
//   tr[f(H)] / N  =  sum_m (2 - delta_m0) g_m mu_m c_m[f],
//   c_m[f] = 1/pi * integral f(E(x)) T_m(x) / sqrt(1-x^2) dx,
//
// with the coefficients computed by Chebyshev-Gauss quadrature (exact for
// polynomial f up to the quadrature order).  One moment sequence therefore
// yields tr[H], tr[H^2], partition functions tr[e^{-beta H}], Fermi-Dirac
// occupations, etc. — the "spectral quantities reconstructed from these
// scalar products in a computationally inexpensive second step" of the
// paper's Sec. II, generalized beyond the DOS.
#pragma once

#include <functional>
#include <span>

#include "core/damping.hpp"
#include "physics/spectral_bounds.hpp"

namespace kpm::core {

struct TraceParams {
  DampingKernel kernel = DampingKernel::jackson;
  double lorentz_lambda = 4.0;
  /// Chebyshev-Gauss quadrature nodes for the coefficient integrals
  /// (0 = automatic: 4x the moment count).
  int quadrature_points = 0;
};

/// tr[f(H)] estimated from averaged moments of unit-normalized random
/// vectors; `dimension` is N.  `f` is evaluated at physical energies.
[[nodiscard]] double trace_function(std::span<const double> mu,
                                    const physics::Scaling& s,
                                    double dimension,
                                    const std::function<double(double)>& f,
                                    const TraceParams& p = {});

/// Chebyshev coefficients c_m[f] for m = 0..order-1 (Gauss quadrature).
[[nodiscard]] std::vector<double> chebyshev_coefficients(
    const std::function<double(double)>& f, const physics::Scaling& s,
    int order, int quadrature_points = 0);

/// Canonical partition function tr[e^{-beta H}].
[[nodiscard]] double partition_function(std::span<const double> mu,
                                        const physics::Scaling& s,
                                        double dimension, double beta,
                                        const TraceParams& p = {});

/// Number of states below the Fermi energy at inverse temperature beta:
/// tr[ 1 / (1 + e^{beta (H - e_fermi)}) ].
[[nodiscard]] double fermi_occupation(std::span<const double> mu,
                                      const physics::Scaling& s,
                                      double dimension, double e_fermi,
                                      double beta, const TraceParams& p = {});

}  // namespace kpm::core
