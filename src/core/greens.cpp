#include "core/greens.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kpm::core {

std::vector<complex_t> greens_function(std::span<const double> mu,
                                       const physics::Scaling& s,
                                       std::span<const double> energies,
                                       const GreensParams& p) {
  require(!mu.empty(), "greens_function: empty moments");
  require(p.branch == 1 || p.branch == -1,
          "greens_function: branch must be +1 or -1");
  std::vector<double> damped(mu.begin(), mu.end());
  apply_damping(p.kernel, damped, p.lorentz_lambda);

  std::vector<complex_t> out;
  out.reserve(energies.size());
  const double sign = static_cast<double>(p.branch);
  for (const double e : energies) {
    const double x = s.to_unit(e);
    require(std::abs(x) < 1.0,
            "greens_function: energy outside the spectral interval");
    const double theta = std::acos(x);
    complex_t acc{};
    for (std::size_t m = 0; m < damped.size(); ++m) {
      const double weight = (m == 0 ? 1.0 : 2.0) * damped[m];
      // -+ i e^{-+ i m theta} = -+i cos(m theta) - sign * ... expanded:
      const double c = std::cos(static_cast<double>(m) * theta);
      const double si = std::sin(static_cast<double>(m) * theta);
      acc += weight * complex_t{-si, -sign * c};
    }
    // Jacobian of the rescaling: G_H(E) = a G_x(a(E - b)).
    out.push_back(s.a * acc / std::sqrt(1.0 - x * x));
  }
  return out;
}

complex_t greens_function_at(std::span<const double> mu,
                             const physics::Scaling& s, double energy,
                             const GreensParams& p) {
  const double e[1] = {energy};
  return greens_function(mu, s, e, p)[0];
}

}  // namespace kpm::core
