#include "core/sweep_session.hpp"

#include <algorithm>
#include <complex>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "sparse/kpm_kernels.hpp"
#include "util/check.hpp"

namespace kpm::core {

global_index OperatorRef::nrows() const noexcept {
  switch (kind_) {
    case Kind::crs: return static_cast<const sparse::CrsMatrix*>(p_)->nrows();
    case Kind::bsr: return static_cast<const sparse::BsrMatrix*>(p_)->nrows();
    case Kind::sell_block:
      return static_cast<const sparse::SellBlockMatrix*>(p_)->nrows();
    case Kind::stencil:
      return static_cast<const sparse::StencilOperator*>(p_)->nrows();
  }
  return 0;
}

global_index OperatorRef::ncols() const noexcept {
  switch (kind_) {
    case Kind::crs: return static_cast<const sparse::CrsMatrix*>(p_)->ncols();
    case Kind::bsr: return static_cast<const sparse::BsrMatrix*>(p_)->ncols();
    case Kind::sell_block:
      return static_cast<const sparse::SellBlockMatrix*>(p_)->ncols();
    case Kind::stencil:
      return static_cast<const sparse::StencilOperator*>(p_)->ncols();
  }
  return 0;
}

global_index OperatorRef::nnz() const noexcept {
  switch (kind_) {
    case Kind::crs: return static_cast<const sparse::CrsMatrix*>(p_)->nnz();
    case Kind::bsr: return static_cast<const sparse::BsrMatrix*>(p_)->nnz();
    case Kind::sell_block:
      return static_cast<const sparse::SellBlockMatrix*>(p_)->nnz();
    case Kind::stencil:
      return static_cast<const sparse::StencilOperator*>(p_)->nnz();
  }
  return 0;
}

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffull;
      h *= 0x100000001b3ull;
    }
  }
  void mix_double(double x) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(x));
    std::memcpy(&bits, &x, sizeof(bits));
    mix(bits);
  }
  void mix_complex(complex_t z) {
    mix_double(z.real());
    mix_double(z.imag());
  }
  void mix_complex_f32(std::complex<float> z) {
    std::uint32_t re = 0, im = 0;
    const float r = z.real(), i = z.imag();
    static_assert(sizeof(re) == sizeof(r));
    std::memcpy(&re, &r, sizeof(re));
    std::memcpy(&im, &i, sizeof(im));
    mix((static_cast<std::uint64_t>(im) << 32) | re);
  }
  void mix_string(const std::string& s) {
    mix(s.size());
    for (const char c : s) mix(static_cast<std::uint64_t>(
        static_cast<unsigned char>(c)));
  }
  template <class T>
  void mix_indices(std::span<const T> xs) {
    for (const T x : xs) mix(static_cast<std::uint64_t>(x));
  }
};

}  // namespace

std::uint64_t operator_fingerprint(OperatorRef h, const physics::Scaling& s) {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(h.kind()));
  f.mix(static_cast<std::uint64_t>(h.nrows()));
  f.mix(static_cast<std::uint64_t>(h.ncols()));
  f.mix(static_cast<std::uint64_t>(h.nnz()));
  f.mix_double(s.a);
  f.mix_double(s.b);
  // Full content digest for EVERY sweepable format: structure and value bits
  // both fold in, so two operators with the same sparsity pattern but
  // different entries (a new disorder realization, changed hoppings) can
  // never share a print.  The service result cache and the checkpoint
  // restore guards depend on exactly this property.
  switch (h.kind()) {
    case OperatorRef::Kind::crs: {
      const auto& m = h.crs();
      for (global_index i = 0; i < m.nrows(); ++i) {
        const auto cols = m.row_cols(i);
        const auto vals = m.row_values(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
          f.mix(static_cast<std::uint64_t>(cols[k]));
          f.mix_complex(vals[k]);
        }
      }
      break;
    }
    case OperatorRef::Kind::bsr: {
      // Storage-order walk of the block stream; block_col is the 32-bit
      // ground truth, so the digest is identical whichever index encoding
      // (u16 delta / u32) construction picked.
      const auto& m = h.bsr();
      f.mix(static_cast<std::uint64_t>(m.block_dim()));
      f.mix(static_cast<std::uint64_t>(m.precision()));
      f.mix_indices(m.block_ptr());
      f.mix_indices(m.block_col());
      f.mix_indices(m.block_mask());
      for (const auto z : m.values()) f.mix_complex(z);
      for (const auto z : m.values_f32()) f.mix_complex_f32(z);
      break;
    }
    case OperatorRef::Kind::sell_block: {
      const auto& m = h.sell_block();
      f.mix(static_cast<std::uint64_t>(m.block_dim()));
      f.mix(static_cast<std::uint64_t>(m.precision()));
      f.mix(static_cast<std::uint64_t>(m.chunk_height()));
      f.mix(static_cast<std::uint64_t>(m.sigma()));
      f.mix_indices(m.perm());
      f.mix_indices(m.chunk_ptr());
      f.mix_indices(m.chunk_len());
      f.mix_indices(m.block_col());
      f.mix_indices(m.block_mask());
      for (const auto z : m.values()) f.mix_complex(z);
      for (const auto z : m.values_f32()) f.mix_complex_f32(z);
      break;
    }
    case OperatorRef::Kind::stencil: {
      const auto& m = h.stencil();
      f.mix_string(m.kind());
      f.mix(static_cast<std::uint64_t>(m.block_dim()));
      f.mix(static_cast<std::uint64_t>(m.row_phase()));
      for (const auto& t : m.terms()) {
        f.mix(static_cast<std::uint64_t>(t.delta));
        f.mix(static_cast<std::uint64_t>(t.mask));
        for (const auto z : t.coeff) f.mix_complex(z);
      }
      f.mix(m.diag().size());
      for (const double d : m.diag()) f.mix_double(d);
      f.mix_indices(m.boundary_ptr());
      f.mix_indices(m.boundary_col());
      for (const auto z : m.boundary_val()) f.mix_complex(z);
      break;
    }
  }
  return f.h == 0 ? 1 : f.h;
}

void OperatorRef::apply(const sparse::AugScalars& s,
                        const blas::BlockVector& v, blas::BlockVector& w,
                        std::span<complex_t> dot_vv,
                        std::span<complex_t> dot_wv) const {
  switch (kind_) {
    case Kind::crs:
      sparse::aug_spmmv(*static_cast<const sparse::CrsMatrix*>(p_), s, v, w,
                        dot_vv, dot_wv);
      return;
    case Kind::bsr:
      sparse::aug_spmmv(*static_cast<const sparse::BsrMatrix*>(p_), s, v, w,
                        dot_vv, dot_wv);
      return;
    case Kind::sell_block:
      sparse::aug_spmmv(*static_cast<const sparse::SellBlockMatrix*>(p_), s, v,
                        w, dot_vv, dot_wv);
      return;
    case Kind::stencil:
      sparse::aug_spmmv(*static_cast<const sparse::StencilOperator*>(p_), s, v,
                        w, dot_vv, dot_wv);
      return;
  }
}

SweepSession::SweepSession(OperatorRef h, const physics::Scaling& s,
                           const blas::BlockVector& v0, int num_moments)
    : h_(h), s_(s), num_moments_(num_moments) {
  require(num_moments >= 2 && num_moments % 2 == 0,
          "SweepSession: num_moments must be even and >= 2");
  require(h.nrows() == h.ncols(), "SweepSession: matrix must be square");
  require(v0.rows() == h.nrows(), "SweepSession: start block size mismatch");
  require(v0.layout() == blas::Layout::row_major,
          "SweepSession: start block must be row-major");
  require(v0.width() >= 1, "SweepSession: at least one lane");
  const int width = v0.width();
  v_ = blas::BlockVector(v0.rows(), width);
  w_ = blas::BlockVector(v0.rows(), width);
  if (h_.kind() == OperatorRef::Kind::sell_block) {
    // The SELL-block kernels act in the permuted row numbering; rebind the
    // start block once on entry (same rule as the moments_aug_spmmv impl).
    h_.sell_block().permute(v0, v_);
  } else {
    for (global_index i = 0; i < v0.rows(); ++i) {
      for (int r = 0; r < width; ++r) v_(i, r) = v0(i, r);
    }
  }
  lane_of_column_.resize(static_cast<std::size_t>(width));
  for (int r = 0; r < width; ++r) lane_of_column_[static_cast<std::size_t>(r)] = r;
  mu_.resize(static_cast<std::size_t>(width));
  for (auto& m : mu_) m.reserve(static_cast<std::size_t>(num_moments));
  active_.assign(static_cast<std::size_t>(width), 1);
  dvv_.resize(static_cast<std::size_t>(width));
  dwv_.resize(static_cast<std::size_t>(width));
}

SweepSession::SweepSession(OperatorRef h, const physics::Scaling& s,
                           SweepCheckpoint state)
    : h_(h),
      s_(s),
      num_moments_(state.num_moments),
      next_step_(state.next_step),
      v_(std::move(state.v)),
      w_(std::move(state.w)),
      lane_of_column_(std::move(state.lane_of_column)),
      mu_(std::move(state.mu)),
      active_(std::move(state.active)) {
  require(num_moments_ >= 2 && num_moments_ % 2 == 0,
          "SweepSession: checkpoint num_moments must be even and >= 2");
  require(h.nrows() == h.ncols(), "SweepSession: matrix must be square");
  require(v_.rows() == h.nrows(),
          "SweepSession: checkpoint block size mismatch");
  require(v_.width() == w_.width() &&
              lane_of_column_.size() == static_cast<std::size_t>(v_.width()) &&
              mu_.size() == active_.size(),
          "SweepSession: inconsistent checkpoint");
  require(state.fingerprint == 0 || state.fingerprint == fingerprint(),
          "SweepSession: checkpoint fingerprint does not match this "
          "operator/scaling — restoring against a different operator would "
          "silently produce wrong moments");
  dvv_.resize(static_cast<std::size_t>(v_.width()));
  dwv_.resize(static_cast<std::size_t>(v_.width()));
}

std::uint64_t SweepSession::fingerprint() const {
  if (!fingerprint_.has_value()) {
    fingerprint_ = operator_fingerprint(h_, s_);
  }
  return *fingerprint_;
}

int SweepSession::completed() const noexcept {
  return std::min(2 * next_step_, num_moments_);
}

bool SweepSession::done() const noexcept {
  return completed() >= num_moments_ || active_lanes() == 0;
}

int SweepSession::active_lanes() const noexcept {
  int n = 0;
  for (const char a : active_) n += a != 0;
  return n;
}

std::span<const double> SweepSession::mu(int lane) const {
  require(lane >= 0 && lane < lanes(), "SweepSession: lane out of range");
  return mu_[static_cast<std::size_t>(lane)];
}

void SweepSession::deactivate_lane(int lane) {
  require(lane >= 0 && lane < lanes(), "SweepSession: lane out of range");
  active_[static_cast<std::size_t>(lane)] = 0;
}

/// Appends this step's two moments to every live lane.  The arithmetic is
/// byte-for-byte the eta_to_mu conversion of core/moments: mu_0 and mu_1 are
/// the raw dots, later entries are 2*eta - mu_0 (even) / 2*eta - mu_1 (odd).
void SweepSession::record_step(int m) {
  const int width = v_.width();
  for (int c = 0; c < width; ++c) {
    const int lane = lane_of_column_[static_cast<std::size_t>(c)];
    auto& mu = mu_[static_cast<std::size_t>(lane)];
    if (active_[static_cast<std::size_t>(lane)] == 0) continue;
    const double even = dvv_[static_cast<std::size_t>(c)].real();
    const double odd = dwv_[static_cast<std::size_t>(c)].real();
    if (m == 0) {
      mu.push_back(even);
      mu.push_back(odd);
    } else {
      mu.push_back(2.0 * even - mu[0]);
      mu.push_back(2.0 * odd - mu[1]);
    }
  }
}

int SweepSession::advance(int max_steps) {
  const auto rec = sparse::AugScalars::recurrence(s_.a, s_.b);
  for (int taken = 0; taken < max_steps && !done(); ++taken) {
    if (next_step_ == 0) {
      h_.apply(sparse::AugScalars::startup(s_.a, s_.b), v_, w_, dvv_, dwv_);
    } else {
      std::swap(v_, w_);
      h_.apply(rec, v_, w_, dvv_, dwv_);
    }
    record_step(next_step_);
    ++next_step_;
    ++steps_;
    lanes_swept_ += v_.width();
  }
  return completed();
}

int SweepSession::advance_all() {
  while (!done()) advance(1 << 20);
  return completed();
}

bool SweepSession::compact() {
  const int width = v_.width();
  int live = 0;
  for (int c = 0; c < width; ++c) {
    live += active_[static_cast<std::size_t>(
               lane_of_column_[static_cast<std::size_t>(c)])] != 0;
  }
  if (live == width || live == 0) return false;
  blas::BlockVector nv(v_.rows(), live);
  blas::BlockVector nw(v_.rows(), live);
  std::vector<int> nlanes(static_cast<std::size_t>(live));
  int j = 0;
  for (int c = 0; c < width; ++c) {
    const int lane = lane_of_column_[static_cast<std::size_t>(c)];
    if (active_[static_cast<std::size_t>(lane)] == 0) continue;
    for (global_index i = 0; i < v_.rows(); ++i) {
      nv(i, j) = v_(i, c);
      nw(i, j) = w_(i, c);
    }
    nlanes[static_cast<std::size_t>(j)] = lane;
    ++j;
  }
  v_ = std::move(nv);
  w_ = std::move(nw);
  lane_of_column_ = std::move(nlanes);
  dvv_.resize(static_cast<std::size_t>(live));
  dwv_.resize(static_cast<std::size_t>(live));
  return true;
}

SweepCheckpoint SweepSession::checkpoint() const {
  SweepCheckpoint cp;
  cp.v = v_;
  cp.w = w_;
  cp.mu = mu_;
  cp.lane_of_column = lane_of_column_;
  cp.active = active_;
  cp.num_moments = num_moments_;
  cp.next_step = next_step_;
  cp.fingerprint = fingerprint();
  return cp;
}

}  // namespace kpm::core
