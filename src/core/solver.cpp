#include "core/solver.hpp"

#include "util/timer.hpp"

namespace kpm::core {

const char* stage_name(OptimizationStage stage) {
  switch (stage) {
    case OptimizationStage::naive:
      return "naive";
    case OptimizationStage::aug_spmv:
      return "aug_spmv";
    case OptimizationStage::aug_spmmv:
      return "aug_spmmv";
  }
  return "?";
}

DosResult compute_dos(const sparse::CrsMatrix& h, DosParams p,
                      std::optional<physics::Scaling> scaling) {
  DosResult out;
  if (scaling.has_value()) {
    out.scaling = *scaling;
  } else {
    const auto iv = physics::lanczos_bounds(h);
    out.scaling = physics::make_scaling(iv, p.scaling_epsilon);
  }
  if (p.reconstruct.normalization == 1.0) {
    p.reconstruct.normalization = static_cast<double>(h.nrows());
  }

  Timer t;
  t.start();
  switch (p.stage) {
    case OptimizationStage::naive:
      out.moments = moments_naive(h, out.scaling, p.moments);
      break;
    case OptimizationStage::aug_spmv:
      out.moments = moments_aug_spmv(h, out.scaling, p.moments);
      break;
    case OptimizationStage::aug_spmmv:
      out.moments = moments_aug_spmmv(h, out.scaling, p.moments);
      break;
  }
  t.stop();
  out.seconds = t.seconds();
  out.spectrum = reconstruct_density(out.moments.mu, out.scaling,
                                     p.reconstruct);
  return out;
}

}  // namespace kpm::core
