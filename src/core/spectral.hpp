// Local DOS and momentum-resolved spectral functions (paper Fig. 2).
//
// Both quantities are KPM runs with *prescribed* start vectors instead of
// random ones:
//   LDOS rho_i(E)   : start vector |i> (unit vector at one basis state)
//   A(k, E)         : start vector |k> (plane wave over the lattice)
// Batches of start vectors are processed through the blocked aug_spmmv
// kernel, which is precisely the SpMMV usage pattern the paper advocates.
#pragma once

#include <vector>

#include "core/moments.hpp"
#include "core/reconstruct.hpp"
#include "physics/ti_model.hpp"

namespace kpm::core {

struct LdosParams {
  int num_moments = 512;
  int block_width = 32;  ///< start vectors processed per aug_spmmv batch
  ReconstructParams reconstruct;
};

/// LDOS at the given basis indices: result[s] is the spectrum for
/// `basis_indices[s]`.  Indices address single basis states; sum consecutive
/// orbitals externally for a per-site LDOS.
[[nodiscard]] std::vector<Spectrum> local_dos(
    const sparse::CrsMatrix& h, const physics::Scaling& s,
    std::span<const global_index> basis_indices, const LdosParams& p);

/// LDOS of one site of the TI lattice (sums the 4 orbital components).
[[nodiscard]] Spectrum site_ldos(const sparse::CrsMatrix& h,
                                 const physics::Scaling& s,
                                 const physics::TIParams& lattice,
                                 const physics::Site& site,
                                 const LdosParams& p);

struct SpectralFunctionParams {
  int num_moments = 1024;
  ReconstructParams reconstruct;
};

/// Momentum-resolved spectral function A(k, E) for the TI lattice: one
/// spectrum per k point, each the sum over the 4 orbital plane waves
/// (k given in units of the Brillouin zone: k = 2*pi*(nx_k/Nx, ...)).
struct KPoint {
  double kx = 0.0;
  double ky = 0.0;
  double kz = 0.0;
};

[[nodiscard]] std::vector<Spectrum> spectral_function(
    const sparse::CrsMatrix& h, const physics::Scaling& s,
    const physics::TIParams& lattice, std::span<const KPoint> kpoints,
    const SpectralFunctionParams& p);

}  // namespace kpm::core
