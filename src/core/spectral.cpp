#include "core/spectral.hpp"

#include <cmath>

#include "blas/block_vector.hpp"
#include "util/check.hpp"

namespace kpm::core {
namespace {

Spectrum reconstruct_with(const std::vector<double>& mu,
                          const physics::Scaling& s,
                          const ReconstructParams& p) {
  return reconstruct_density(mu, s, p);
}

}  // namespace

std::vector<Spectrum> local_dos(const sparse::CrsMatrix& h,
                                const physics::Scaling& s,
                                std::span<const global_index> basis_indices,
                                const LdosParams& p) {
  require(p.block_width >= 1, "local_dos: block_width >= 1");
  std::vector<Spectrum> out;
  out.reserve(basis_indices.size());
  for (std::size_t begin = 0; begin < basis_indices.size();
       begin += static_cast<std::size_t>(p.block_width)) {
    const std::size_t batch =
        std::min<std::size_t>(p.block_width, basis_indices.size() - begin);
    blas::BlockVector v0(h.nrows(), static_cast<int>(batch));
    for (std::size_t c = 0; c < batch; ++c) {
      const global_index idx = basis_indices[begin + c];
      require(idx >= 0 && idx < h.nrows(), "local_dos: index out of range");
      v0(idx, static_cast<int>(c)) = {1.0, 0.0};
    }
    const auto mu = moments_of_block(h, s, v0, p.num_moments);
    for (std::size_t c = 0; c < batch; ++c) {
      out.push_back(reconstruct_with(mu[c], s, p.reconstruct));
    }
  }
  return out;
}

Spectrum site_ldos(const sparse::CrsMatrix& h, const physics::Scaling& s,
                   const physics::TIParams& lattice,
                   const physics::Site& site, const LdosParams& p) {
  std::vector<global_index> indices;
  indices.reserve(4);
  for (int orb = 0; orb < 4; ++orb) {
    indices.push_back(physics::site_index(lattice, site, orb));
  }
  const auto spectra = local_dos(h, s, indices, p);
  Spectrum sum = spectra.front();
  for (std::size_t c = 1; c < spectra.size(); ++c) {
    for (std::size_t k = 0; k < sum.density.size(); ++k) {
      sum.density[k] += spectra[c].density[k];
    }
  }
  return sum;
}

std::vector<Spectrum> spectral_function(const sparse::CrsMatrix& h,
                                        const physics::Scaling& s,
                                        const physics::TIParams& lattice,
                                        std::span<const KPoint> kpoints,
                                        const SpectralFunctionParams& p) {
  const global_index nsites =
      static_cast<global_index>(lattice.nx) * lattice.ny * lattice.nz;
  require(4 * nsites == h.nrows(), "spectral_function: lattice/matrix mismatch");
  const double norm = 1.0 / std::sqrt(static_cast<double>(nsites));

  std::vector<Spectrum> out;
  out.reserve(kpoints.size());
  for (const auto& k : kpoints) {
    // One block of 4 orbital plane waves per k point.
    blas::BlockVector v0(h.nrows(), 4);
    for (int z = 0; z < lattice.nz; ++z) {
      for (int y = 0; y < lattice.ny; ++y) {
        for (int x = 0; x < lattice.nx; ++x) {
          const double phase = k.kx * x + k.ky * y + k.kz * z;
          const complex_t amp = std::polar(norm, phase);
          const physics::Site site{x, y, z};
          for (int orb = 0; orb < 4; ++orb) {
            v0(physics::site_index(lattice, site, orb), orb) = amp;
          }
        }
      }
    }
    const auto mu = moments_of_block(h, s, v0, p.num_moments);
    // A(k, E) = sum over the orbital channels.
    std::vector<double> mu_sum(mu.front().size(), 0.0);
    for (const auto& column : mu) {
      for (std::size_t m = 0; m < mu_sum.size(); ++m) mu_sum[m] += column[m];
    }
    out.push_back(reconstruct_with(mu_sum, s, p.reconstruct));
  }
  return out;
}

}  // namespace kpm::core
