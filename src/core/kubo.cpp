#include "core/kubo.hpp"

#include <cmath>

#include "blas/level1.hpp"
#include "sparse/coo.hpp"
#include "sparse/kpm_kernels.hpp"
#include "sparse/spmv.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::core {
namespace {

/// Accumulates mu_nm contributions of one start vector |r>:
///   chi_m = J T_m(H~) J |r>   (precomputed, M vectors)
///   psi_n = T_n(H~) |r>       (recurrence)
///   mu_nm += Re <psi_n | chi_m>
void accumulate_vector(const sparse::CrsMatrix& h, const physics::Scaling& s,
                       const sparse::CrsMatrix& j,
                       std::span<const complex_t> r, int order,
                       std::vector<double>& mu) {
  const auto n_dim = r.size();
  const auto startup = sparse::AugScalars::startup(s.a, s.b);
  const auto rec = sparse::AugScalars::recurrence(s.a, s.b);

  // chi_m = J T_m(H~) (J |r>).
  std::vector<aligned_vector<complex_t>> chi(
      static_cast<std::size_t>(order));
  {
    aligned_vector<complex_t> v(n_dim), w(n_dim);
    sparse::spmv(j, r, v);  // v = T_0 J |r>
    chi[0].resize(n_dim);
    sparse::spmv(j, v, chi[0]);
    if (order > 1) {
      sparse::aug_spmv(h, startup, v, w, nullptr, nullptr);  // w = T_1 J|r>
      chi[1].resize(n_dim);
      sparse::spmv(j, w, chi[1]);
    }
    for (int m = 2; m < order; ++m) {
      std::swap(v, w);
      sparse::aug_spmv(h, rec, v, w, nullptr, nullptr);
      chi[static_cast<std::size_t>(m)].resize(n_dim);
      sparse::spmv(j, w, chi[static_cast<std::size_t>(m)]);
    }
  }
  // psi_n recurrence with on-the-fly dots against every chi_m.
  aligned_vector<complex_t> v(r.begin(), r.end());
  aligned_vector<complex_t> w(n_dim);
  auto accumulate_row = [&](int n, const aligned_vector<complex_t>& psi) {
    for (int m = 0; m < order; ++m) {
      mu[static_cast<std::size_t>(n) * order + static_cast<std::size_t>(m)] +=
          blas::dot(psi, chi[static_cast<std::size_t>(m)]).real();
    }
  };
  accumulate_row(0, v);
  if (order > 1) {
    sparse::aug_spmv(h, startup, v, w, nullptr, nullptr);
    accumulate_row(1, w);
  }
  for (int n = 2; n < order; ++n) {
    std::swap(v, w);
    sparse::aug_spmv(h, rec, v, w, nullptr, nullptr);
    accumulate_row(n, w);
  }
}

}  // namespace

KuboMoments kubo_moments(const sparse::CrsMatrix& h,
                         const physics::Scaling& s, const sparse::CrsMatrix& j,
                         const KuboParams& p) {
  require(h.nrows() == h.ncols() && j.nrows() == h.nrows() &&
              j.ncols() == h.ncols(),
          "kubo_moments: H and J must be square and conformant");
  require(p.num_moments >= 1, "kubo_moments: num_moments >= 1");
  require(p.deterministic_full_trace || p.num_random >= 1,
          "kubo_moments: num_random >= 1");
  const auto n_dim = static_cast<std::size_t>(h.nrows());
  KuboMoments out;
  out.order = p.num_moments;
  out.dimension = h.nrows();
  out.mu.assign(static_cast<std::size_t>(p.num_moments) * p.num_moments, 0.0);

  if (p.deterministic_full_trace) {
    require(h.nrows() <= 4096,
            "kubo_moments: deterministic trace is for validation sizes");
    aligned_vector<complex_t> e(n_dim);
    for (global_index i = 0; i < h.nrows(); ++i) {
      std::fill(e.begin(), e.end(), complex_t{});
      e[static_cast<std::size_t>(i)] = {1.0, 0.0};
      accumulate_vector(h, s, j, e, p.num_moments, out.mu);
    }
    for (auto& x : out.mu) x /= static_cast<double>(h.nrows());
  } else {
    RandomVectorSource rng(p.seed, p.vector_kind);
    aligned_vector<complex_t> r(n_dim);
    for (int sample = 0; sample < p.num_random; ++sample) {
      rng.fill(r);  // normalized: <r|A|r> estimates tr[A]/N
      accumulate_vector(h, s, j, r, p.num_moments, out.mu);
    }
    for (auto& x : out.mu) x /= static_cast<double>(p.num_random);
  }
  return out;
}

ConductivityCurve kubo_conductivity(const KuboMoments& moments,
                                    const physics::Scaling& s,
                                    const ConductivityParams& p) {
  require(moments.order >= 1, "kubo_conductivity: empty moments");
  require(p.num_points >= 2, "kubo_conductivity: need >= 2 points");
  require(p.edge_margin > 0.0 && p.edge_margin < 0.5,
          "kubo_conductivity: edge margin in (0, 0.5)");
  const int order = moments.order;
  const auto g = damping_coefficients(p.kernel, order);

  ConductivityCurve out;
  out.energy.resize(static_cast<std::size_t>(p.num_points));
  out.sigma.resize(static_cast<std::size_t>(p.num_points));
  std::vector<double> t(static_cast<std::size_t>(order));
  for (int k = 0; k < p.num_points; ++k) {
    const double x =
        -1.0 + p.edge_margin +
        (2.0 - 2.0 * p.edge_margin) * k / static_cast<double>(p.num_points - 1);
    out.energy[static_cast<std::size_t>(k)] = s.to_energy(x);
    // T_n(x) table, then the damped double sum.
    const double theta = std::acos(x);
    for (int n = 0; n < order; ++n) {
      t[static_cast<std::size_t>(n)] = std::cos(n * theta);
    }
    double acc = 0.0;
    for (int n = 0; n < order; ++n) {
      const double wn = (n == 0 ? 1.0 : 2.0) * g[static_cast<std::size_t>(n)] *
                        t[static_cast<std::size_t>(n)];
      double inner = 0.0;
      for (int m = 0; m < order; ++m) {
        const double wm = (m == 0 ? 1.0 : 2.0) *
                          g[static_cast<std::size_t>(m)] *
                          t[static_cast<std::size_t>(m)];
        inner += wm * moments.at(n, m);
      }
      acc += wn * inner;
    }
    out.sigma[static_cast<std::size_t>(k)] =
        acc / (pi * pi * (1.0 - x * x));
  }
  return out;
}

sparse::CrsMatrix current_operator_x(const physics::AndersonParams& p) {
  const global_index dim = p.dimension();
  sparse::CooMatrix coo(dim, dim);
  auto index = [&](int x, int y, int z) {
    return static_cast<global_index>(x) +
           static_cast<global_index>(p.nx) *
               (y + static_cast<global_index>(p.ny) * z);
  };
  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        int xn = x + 1;
        if (xn >= p.nx) {
          if (!p.periodic) continue;
          xn = 0;
        }
        // J contribution of the bond (i, i+x): +i t at (i+x, i), Hermitian
        // partner -i t at (i, i+x).
        coo.add_hermitian_pair(index(xn, y, z), index(x, y, z),
                               {0.0, p.t});
      }
    }
  }
  coo.compress();
  return sparse::CrsMatrix(coo);
}

}  // namespace kpm::core
