#include "core/propagator.hpp"

#include <cmath>

#include "blas/block_ops.hpp"
#include "blas/level1.hpp"
#include "sparse/kpm_kernels.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::core {
namespace {

double bessel_j(int m, double z) {
  // J_m(-z) = (-1)^m J_m(z); std::cyl_bessel_j requires z >= 0.
  const double value = std::cyl_bessel_j(m, std::abs(z));
  return z < 0.0 && m % 2 != 0 ? -value : value;
}

complex_t minus_i_pow(int m) {
  switch (m % 4) {
    case 0: return {1.0, 0.0};
    case 1: return {0.0, -1.0};
    case 2: return {-1.0, 0.0};
    default: return {0.0, 1.0};
  }
}

}  // namespace

int required_order(double z, double tolerance) {
  require(tolerance > 0.0, "required_order: tolerance must be positive");
  const int start = static_cast<int>(std::ceil(std::abs(z))) + 1;
  constexpr int cap = 100000;
  int consecutive_small = 0;
  for (int m = start; m < cap; ++m) {
    if (std::abs(bessel_j(m, z)) < tolerance) {
      if (++consecutive_small == 4) return m - 2;  // past the tail onset
    } else {
      consecutive_small = 0;
    }
  }
  return cap;
}

std::vector<complex_t> chebyshev_time_coefficients(double z, int order) {
  require(order >= 1, "chebyshev_time_coefficients: order >= 1");
  std::vector<complex_t> c(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) {
    const double jm = bessel_j(m, z);
    c[static_cast<std::size_t>(m)] =
        minus_i_pow(m) * complex_t{jm, 0.0} * (m == 0 ? 1.0 : 2.0);
  }
  return c;
}

void propagate(const sparse::CrsMatrix& h, const physics::Scaling& s,
               const PropagatorParams& p, std::span<const complex_t> in,
               std::span<complex_t> out) {
  require(in.size() == static_cast<std::size_t>(h.nrows()) &&
              out.size() == in.size(),
          "propagate: size mismatch");
  const double zz = p.time / s.a;  // z = t / a in H~ units
  const int order =
      p.order > 0 ? p.order : required_order(zz, p.tolerance);
  const auto c = chebyshev_time_coefficients(zz, order);
  // Global phase from the spectral shift: e^{-i b t}.
  const complex_t phase = std::polar(1.0, -s.b * p.time);

  const auto n = in.size();
  aligned_vector<complex_t> v(in.begin(), in.end());  // T_0 |in>
  aligned_vector<complex_t> w(n);                     // T_1 |in>
  // out = c_0 T_0 |in>
  for (std::size_t i = 0; i < n; ++i) out[i] = c[0] * in[i];
  if (order == 1) {
    blas::scal(phase, out);
    return;
  }
  sparse::aug_spmv(h, sparse::AugScalars::startup(s.a, s.b), v, w, nullptr,
                   nullptr);
  blas::axpy(c[1], w, out);
  const auto rec = sparse::AugScalars::recurrence(s.a, s.b);
  for (int m = 2; m < order; ++m) {
    std::swap(v, w);  // v = T_{m-1}, w = T_{m-2}
    sparse::aug_spmv(h, rec, v, w, nullptr, nullptr);  // w <- T_m
    blas::axpy(c[static_cast<std::size_t>(m)], w, out);
  }
  blas::scal(phase, out);
}

void propagate(const sparse::CrsMatrix& h, const physics::Scaling& s,
               const PropagatorParams& p, const blas::BlockVector& in,
               blas::BlockVector& out) {
  require(in.rows() == h.nrows() && out.rows() == in.rows() &&
              in.width() == out.width(),
          "propagate(block): shape mismatch");
  const double zz = p.time / s.a;
  const int order =
      p.order > 0 ? p.order : required_order(zz, p.tolerance);
  const auto c = chebyshev_time_coefficients(zz, order);
  const complex_t phase = std::polar(1.0, -s.b * p.time);

  blas::BlockVector v(in.rows(), in.width());
  blas::block_copy(in, v);
  blas::BlockVector w(in.rows(), in.width());
  out.fill({0.0, 0.0});
  blas::block_axpy(c[0], in, out);
  if (order > 1) {
    sparse::aug_spmmv(h, sparse::AugScalars::startup(s.a, s.b), v, w, {}, {});
    blas::block_axpy(c[1], w, out);
    const auto rec = sparse::AugScalars::recurrence(s.a, s.b);
    for (int m = 2; m < order; ++m) {
      std::swap(v, w);
      sparse::aug_spmmv(h, rec, v, w, {}, {});
      blas::block_axpy(c[static_cast<std::size_t>(m)], w, out);
    }
  }
  blas::block_scal(phase, out);
}

}  // namespace kpm::core
