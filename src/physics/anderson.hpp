// 3D Anderson model of localization: scalar tight-binding Hamiltonian on a
// simple cubic lattice with uniform on-site disorder,
//
//   H = -t sum_<n,m> |n><m|  +  sum_n eps_n |n><n|,   eps_n ~ U[-W/2, W/2].
//
// A second application matrix (7-point stencil, real entries promoted to
// complex) exercising the KPM library beyond the TI scenario.
#pragma once

#include <cstdint>

#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::physics {

struct AndersonParams {
  int nx = 16;
  int ny = 16;
  int nz = 16;
  double t = 1.0;
  double disorder = 0.0;  ///< W: disorder strength
  std::uint64_t seed = 42;
  bool periodic = true;

  [[nodiscard]] global_index dimension() const {
    return static_cast<global_index>(nx) * ny * nz;
  }
};

[[nodiscard]] sparse::CrsMatrix build_anderson_hamiltonian(
    const AndersonParams& p);

/// Exact eigenvalues of the clean (W = 0), fully periodic model:
/// E(k) = -2t (cos kx + cos ky + cos kz).  Sorted ascending.
[[nodiscard]] std::vector<double> exact_anderson_spectrum_clean(
    const AndersonParams& p);

}  // namespace kpm::physics
