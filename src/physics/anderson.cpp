#include "physics/anderson.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::physics {

sparse::CrsMatrix build_anderson_hamiltonian(const AndersonParams& p) {
  require(p.nx >= 1 && p.ny >= 1 && p.nz >= 1, "Anderson: extents >= 1");
  require(!p.periodic || (p.nx > 2 && p.ny > 2 && p.nz > 2),
          "Anderson: periodic BCs need extents > 2");
  const global_index dim = p.dimension();
  sparse::CooMatrix coo(dim, dim);
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> eps(-p.disorder / 2.0,
                                             p.disorder / 2.0);

  auto index = [&](int x, int y, int z) {
    return static_cast<global_index>(x) +
           static_cast<global_index>(p.nx) *
               (y + static_cast<global_index>(p.ny) * z);
  };

  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        const global_index n = index(x, y, z);
        if (p.disorder > 0.0) coo.add(n, n, {eps(rng), 0.0});
        const int coords[3] = {x, y, z};
        const int extents[3] = {p.nx, p.ny, p.nz};
        for (int j = 0; j < 3; ++j) {
          int nb[3] = {x, y, z};
          nb[j] = coords[j] + 1;
          if (nb[j] >= extents[j]) {
            if (!p.periodic) continue;
            nb[j] = 0;
          }
          const global_index m = index(nb[0], nb[1], nb[2]);
          coo.add_hermitian_pair(m, n, {-p.t, 0.0});
        }
      }
    }
  }
  coo.compress();
  return sparse::CrsMatrix(coo);
}

std::vector<double> exact_anderson_spectrum_clean(const AndersonParams& p) {
  require(p.disorder == 0.0 && p.periodic,
          "exact spectrum: clean periodic model only");
  std::vector<double> evals;
  evals.reserve(static_cast<std::size_t>(p.dimension()));
  for (int ix = 0; ix < p.nx; ++ix) {
    for (int iy = 0; iy < p.ny; ++iy) {
      for (int iz = 0; iz < p.nz; ++iz) {
        const double e = -2.0 * p.t *
                         (std::cos(2.0 * pi * ix / p.nx) +
                          std::cos(2.0 * pi * iy / p.ny) +
                          std::cos(2.0 * pi * iz / p.nz));
        evals.push_back(e);
      }
    }
  }
  std::sort(evals.begin(), evals.end());
  return evals;
}

}  // namespace kpm::physics
