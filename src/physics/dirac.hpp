// 4x4 Dirac Gamma matrices for the topological-insulator Hamiltonian (Eq. 1).
//
// We use the representation
//   Gamma0 = I4,
//   Gamma1 = tau_z (x) I2,
//   Gamma2 = tau_x (x) sigma_x,
//   Gamma3 = tau_x (x) sigma_y,
//   Gamma4 = tau_x (x) sigma_z,
// which satisfies the Clifford algebra {Gamma_a, Gamma_b} = 2 delta_ab for
// a, b in {1..4}.  The four internal components per lattice site combine the
// orbital (tau) and spin (sigma) degrees of freedom.
#pragma once

#include <array>

#include "util/types.hpp"

namespace kpm::physics {

/// Dense 4x4 complex matrix, row-major.
using Mat4 = std::array<std::array<complex_t, 4>, 4>;

/// Gamma matrix for index a in {0,1,2,3,4} (0 = identity).
[[nodiscard]] const Mat4& gamma(int a);

[[nodiscard]] Mat4 add(const Mat4& a, const Mat4& b);
[[nodiscard]] Mat4 scale(complex_t s, const Mat4& a);
[[nodiscard]] Mat4 multiply(const Mat4& a, const Mat4& b);
[[nodiscard]] Mat4 adjoint(const Mat4& a);
[[nodiscard]] Mat4 anticommutator(const Mat4& a, const Mat4& b);
[[nodiscard]] bool approx_equal(const Mat4& a, const Mat4& b,
                                double tol = 1e-14);
[[nodiscard]] Mat4 identity4();
[[nodiscard]] Mat4 zero4();

/// Nearest-neighbour hopping block in direction j (1=x, 2=y, 3=z):
/// T_j = -t (Gamma1 - i Gamma_{j+1}) / 2.  H contains Psi^dag_{n+e_j} T_j
/// Psi_n plus the Hermitian conjugate.
[[nodiscard]] Mat4 hopping_block(int j, double t);

/// On-site block V * Gamma0 + 2 t * Gamma1.
[[nodiscard]] Mat4 onsite_block(double potential, double t);

}  // namespace kpm::physics
