// Dense eigensolvers for validation.
//
// Used only in tests and small examples to compare KPM spectral estimates
// against exact eigenvalues; the solvers are plain cyclic Jacobi — O(n^3)
// per sweep, adequate for n up to a few hundred.
#pragma once

#include <vector>

#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::physics {

/// Eigenvalues of a real symmetric n x n matrix (row-major, upper triangle
/// authoritative), sorted ascending.  Cyclic Jacobi.
[[nodiscard]] std::vector<double> eigenvalues_symmetric(
    std::vector<double> a, int n, double tol = 1e-12, int max_sweeps = 60);

/// Eigenvalues of a complex Hermitian n x n matrix (row-major), sorted
/// ascending.  Solved through the 2n x 2n real-symmetric embedding
/// [[Re, -Im], [Im, Re]], whose spectrum is the complex spectrum doubled.
[[nodiscard]] std::vector<double> eigenvalues_hermitian(
    const std::vector<complex_t>& a, int n, double tol = 1e-12,
    int max_sweeps = 60);

/// Full real-symmetric eigensystem (sorted ascending; vectors[j*n + i] is
/// component i of eigenvector j).
struct SymmetricEigenSystem {
  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;
  int n = 0;
};

[[nodiscard]] SymmetricEigenSystem eigensystem_symmetric(
    std::vector<double> a, int n, double tol = 1e-12, int max_sweeps = 60);

/// Densifies a sparse matrix (row-major) — for validation-sized problems.
[[nodiscard]] std::vector<complex_t> to_dense(const sparse::CrsMatrix& a);

/// Exact eigenvalues of a (small) sparse Hermitian matrix.
[[nodiscard]] std::vector<double> sparse_eigenvalues(const sparse::CrsMatrix& a);

/// Full eigensystem of a complex Hermitian matrix.
struct EigenSystem {
  std::vector<double> eigenvalues;        ///< sorted ascending
  /// Orthonormal eigenvectors, column j in vectors[j*n .. j*n+n).
  std::vector<complex_t> eigenvectors;
  int n = 0;

  [[nodiscard]] std::span<const complex_t> vector(int j) const {
    return {eigenvectors.data() + static_cast<std::size_t>(j) * n,
            static_cast<std::size_t>(n)};
  }
};

/// Eigenvalues *and* eigenvectors via cyclic Jacobi on the real-symmetric
/// embedding; the doubled embedding eigenvectors are reduced to an
/// orthonormal complex set (validation workloads only, O(n^3) per sweep).
[[nodiscard]] EigenSystem eigensystem_hermitian(
    const std::vector<complex_t>& a, int n, double tol = 1e-12,
    int max_sweeps = 60);

/// Convenience: eigensystem of a small sparse Hermitian matrix.
[[nodiscard]] EigenSystem sparse_eigensystem(const sparse::CrsMatrix& a);

}  // namespace kpm::physics
