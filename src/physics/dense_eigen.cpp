#include "physics/dense_eigen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kpm::physics {

namespace {

/// Cyclic Jacobi; if `vectors` is non-null it accumulates the rotations
/// (columns become the eigenvectors, initialised to identity here).
std::vector<double> jacobi_symmetric(std::vector<double> a, int n, double tol,
                                     int max_sweeps,
                                     std::vector<double>* vectors) {
  require(n >= 0 && a.size() == static_cast<std::size_t>(n) * n,
          "eigenvalues_symmetric: bad dimensions");
  auto at = [&](int i, int j) -> double& {
    return a[static_cast<std::size_t>(i) * n + j];
  };
  if (vectors != nullptr) {
    vectors->assign(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) (*vectors)[static_cast<std::size_t>(i) * n + i] = 1.0;
  }
  // Symmetrize (the upper triangle is authoritative).
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) at(j, i) = at(i, j);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) off += at(i, j) * at(i, j);
    if (std::sqrt(off) <= tol * (1.0 + std::sqrt(off))) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (at(q, q) - at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p, q.
        for (int k = 0; k < n; ++k) {
          const double akp = at(k, p);
          const double akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = at(p, k);
          const double aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
        if (vectors != nullptr) {
          // Accumulate: V <- V * G(p, q, theta).
          for (int k = 0; k < n; ++k) {
            double& vkp = (*vectors)[static_cast<std::size_t>(k) * n + p];
            double& vkq = (*vectors)[static_cast<std::size_t>(k) * n + q];
            const double a0 = vkp;
            const double b0 = vkq;
            vkp = c * a0 - s * b0;
            vkq = s * a0 + c * b0;
          }
        }
      }
    }
  }
  std::vector<double> evals(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) evals[static_cast<std::size_t>(i)] = at(i, i);
  if (vectors == nullptr) std::sort(evals.begin(), evals.end());
  return evals;  // unsorted when vectors are requested (caller sorts both)
}

}  // namespace

std::vector<double> eigenvalues_symmetric(std::vector<double> a, int n,
                                          double tol, int max_sweeps) {
  return jacobi_symmetric(std::move(a), n, tol, max_sweeps, nullptr);
}

SymmetricEigenSystem eigensystem_symmetric(std::vector<double> a, int n,
                                           double tol, int max_sweeps) {
  std::vector<double> vectors;
  const auto evals =
      jacobi_symmetric(std::move(a), n, tol, max_sweeps, &vectors);
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return evals[static_cast<std::size_t>(x)] <
           evals[static_cast<std::size_t>(y)];
  });
  SymmetricEigenSystem out;
  out.n = n;
  out.eigenvalues.reserve(static_cast<std::size_t>(n));
  out.eigenvectors.resize(static_cast<std::size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    const int col = order[static_cast<std::size_t>(j)];
    out.eigenvalues.push_back(evals[static_cast<std::size_t>(col)]);
    for (int i = 0; i < n; ++i) {
      out.eigenvectors[static_cast<std::size_t>(j) * n + i] =
          vectors[static_cast<std::size_t>(i) * n + col];
    }
  }
  return out;
}

std::vector<double> eigenvalues_hermitian(const std::vector<complex_t>& a,
                                          int n, double tol, int max_sweeps) {
  require(n >= 0 && a.size() == static_cast<std::size_t>(n) * n,
          "eigenvalues_hermitian: bad dimensions");
  // Real-symmetric embedding: B = [[Re(A), -Im(A)], [Im(A), Re(A)]].
  const int m = 2 * n;
  std::vector<double> b(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const complex_t z = a[static_cast<std::size_t>(i) * n + j];
      b[static_cast<std::size_t>(i) * m + j] = z.real();
      b[static_cast<std::size_t>(i) * m + (j + n)] = -z.imag();
      b[static_cast<std::size_t>(i + n) * m + j] = z.imag();
      b[static_cast<std::size_t>(i + n) * m + (j + n)] = z.real();
    }
  }
  std::vector<double> doubled = eigenvalues_symmetric(std::move(b), m, tol,
                                                      max_sweeps);
  // Every eigenvalue of A appears twice in the embedding.
  std::vector<double> evals(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) evals[static_cast<std::size_t>(i)] =
      0.5 * (doubled[2 * static_cast<std::size_t>(i)] +
             doubled[2 * static_cast<std::size_t>(i) + 1]);
  return evals;
}

std::vector<complex_t> to_dense(const sparse::CrsMatrix& a) {
  const auto n = static_cast<std::size_t>(a.nrows());
  require(n <= 4096, "to_dense: matrix too large for densification");
  std::vector<complex_t> dense(n * static_cast<std::size_t>(a.ncols()));
  for (global_index i = 0; i < a.nrows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      dense[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.ncols()) +
            static_cast<std::size_t>(cols[k])] = vals[k];
    }
  }
  return dense;
}

std::vector<double> sparse_eigenvalues(const sparse::CrsMatrix& a) {
  require(a.nrows() == a.ncols(), "sparse_eigenvalues: square matrix required");
  return eigenvalues_hermitian(to_dense(a), static_cast<int>(a.nrows()));
}

EigenSystem eigensystem_hermitian(const std::vector<complex_t>& a, int n,
                                  double tol, int max_sweeps) {
  require(n >= 0 && a.size() == static_cast<std::size_t>(n) * n,
          "eigensystem_hermitian: bad dimensions");
  const int m = 2 * n;
  std::vector<double> b(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const complex_t z = a[static_cast<std::size_t>(i) * n + j];
      b[static_cast<std::size_t>(i) * m + j] = z.real();
      b[static_cast<std::size_t>(i) * m + (j + n)] = -z.imag();
      b[static_cast<std::size_t>(i + n) * m + j] = z.imag();
      b[static_cast<std::size_t>(i + n) * m + (j + n)] = z.real();
    }
  }
  std::vector<double> vectors;
  const auto evals =
      jacobi_symmetric(std::move(b), m, tol, max_sweeps, &vectors);
  std::vector<int> order(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return evals[static_cast<std::size_t>(x)] < evals[static_cast<std::size_t>(y)];
  });

  // Every complex eigenvector appears twice in the embedding (u and iu);
  // Gram-Schmidt against the accepted set keeps one representative per
  // complex dimension, including inside degenerate eigenspaces.
  EigenSystem out;
  out.n = n;
  out.eigenvalues.reserve(static_cast<std::size_t>(n));
  out.eigenvectors.reserve(static_cast<std::size_t>(n) * n);
  std::vector<complex_t> candidate(static_cast<std::size_t>(n));
  for (const int col : order) {
    if (static_cast<int>(out.eigenvalues.size()) == n) break;
    for (int i = 0; i < n; ++i) {
      candidate[static_cast<std::size_t>(i)] = {
          vectors[static_cast<std::size_t>(i) * m + col],
          vectors[static_cast<std::size_t>(i + n) * m + col]};
    }
    // Project out all accepted vectors (cheap at validation sizes).
    for (std::size_t j = 0; j < out.eigenvalues.size(); ++j) {
      const complex_t* v = out.eigenvectors.data() + j * static_cast<std::size_t>(n);
      complex_t overlap{};
      for (int i = 0; i < n; ++i) {
        overlap += std::conj(v[i]) * candidate[static_cast<std::size_t>(i)];
      }
      for (int i = 0; i < n; ++i) {
        candidate[static_cast<std::size_t>(i)] -= overlap * v[i];
      }
    }
    double norm2 = 0.0;
    for (const auto& z : candidate) norm2 += std::norm(z);
    if (norm2 < 1e-12) continue;  // the iu partner of an accepted vector
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto& z : candidate) z *= inv;
    out.eigenvalues.push_back(evals[static_cast<std::size_t>(col)]);
    out.eigenvectors.insert(out.eigenvectors.end(), candidate.begin(),
                            candidate.end());
  }
  require(static_cast<int>(out.eigenvalues.size()) == n,
          "eigensystem_hermitian: failed to extract a complete basis");
  return out;
}

EigenSystem sparse_eigensystem(const sparse::CrsMatrix& a) {
  require(a.nrows() == a.ncols(), "sparse_eigensystem: square matrix required");
  return eigensystem_hermitian(to_dense(a), static_cast<int>(a.nrows()));
}

}  // namespace kpm::physics
