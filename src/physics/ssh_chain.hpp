// Su-Schrieffer-Heeger (SSH) chain: the minimal topological model.
//
//   H = sum_i [ t1 c^dag_{B,i} c_{A,i} + t2 c^dag_{A,i+1} c_{B,i} + h.c. ]
//
// Dimerized 1D chain with alternating hoppings t1 (intra-cell) and t2
// (inter-cell).  For |t2| > |t1| the open chain hosts topologically
// protected zero-energy edge states — a 1D sibling of the paper's 3D
// topological insulator, small enough for exhaustive validation and a
// crisp demonstration of KPM resolving in-gap states.
#pragma once

#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::physics {

struct SshParams {
  int ncells = 64;    ///< unit cells (2 sites each)
  double t1 = 0.6;    ///< intra-cell hopping
  double t2 = 1.0;    ///< inter-cell hopping
  bool periodic = false;

  [[nodiscard]] global_index dimension() const { return 2LL * ncells; }
  /// Topological phase (open chain hosts zero-energy edge modes).
  [[nodiscard]] bool topological() const { return std::abs(t2) > std::abs(t1); }
};

[[nodiscard]] sparse::CrsMatrix build_ssh_hamiltonian(const SshParams& p);

/// Exact spectrum of the periodic chain: E(k) = +-|t1 + t2 e^{ik}|, sorted.
[[nodiscard]] std::vector<double> exact_ssh_spectrum_periodic(
    const SshParams& p);

}  // namespace kpm::physics
