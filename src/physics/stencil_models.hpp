// Matrix-free stencil descriptors for the lattice Hamiltonians (DESIGN.md
// §5h).  Each factory expresses a model as a sparse::StencilOperator whose
// moments are bitwise identical to the assembled-CRS moments of the matching
// build_*_hamiltonian(): the coefficient blocks reuse the builders' exact
// arithmetic (same expressions, same evaluation order), the terms are listed
// in the builders' ascending-column order, and any per-site data (Anderson
// disorder, external potentials) becomes the one-f64-per-row diagonal
// stream drawn from the identical RNG sequence.
#pragma once

#include "physics/anderson.hpp"
#include "physics/graphene.hpp"
#include "physics/ssh_chain.hpp"
#include "physics/ti_model.hpp"
#include "sparse/stencil.hpp"

namespace kpm::physics {

/// 3D TI Hamiltonian (Eq. 1) as a 7-point stencil of 4x4 Dirac blocks.
/// Moments match build_ti_hamiltonian(p) bitwise.  When p.potential is set
/// the per-site value streams through the stencil diagonal; requires
/// nx, ny >= 2 so the site deltas {+-1, +-nx, +-nx*ny} are distinct.
[[nodiscard]] sparse::StencilOperator make_ti_stencil(const TIParams& p);

/// 3D Anderson model as a scalar 7-point stencil; disorder (when W > 0)
/// streams as the diagonal, drawn from the same seeded RNG sequence as
/// build_anderson_hamiltonian(p).  Requires nx, ny >= 2.
[[nodiscard]] sparse::StencilOperator make_anderson_stencil(
    const AndersonParams& p);

/// Graphene honeycomb sheet as a 2x2-block stencil over unit cells; an
/// optional potential streams through the diagonal.  Requires ncells_x >= 2.
[[nodiscard]] sparse::StencilOperator make_graphene_stencil(
    const GrapheneParams& p);

/// SSH chain as a 2x2-block stencil over unit cells.
[[nodiscard]] sparse::StencilOperator make_ssh_stencil(const SshParams& p);

}  // namespace kpm::physics
