#include "physics/stencil_models.hpp"

#include <array>
#include <complex>
#include <random>

#include "physics/dirac.hpp"
#include "util/check.hpp"

namespace kpm::physics {
namespace {

using sparse::StencilOperator;
using Term = StencilOperator::Term;

/// Packs a builder's row-major b x b block into a Term's column-major
/// coefficients (the BsrMatrix layout), preserving every bit — including
/// the signed zeros std::conj() puts on the conjugated Hermitian halves,
/// which the assembled CRS stores verbatim.
template <int B, class Block>
Term block_term(global_index delta, const Block& m) {
  Term t;
  t.delta = delta;
  for (int a = 0; a < B; ++a) {
    for (int c = 0; c < B; ++c) {
      t.coeff[static_cast<std::size_t>(c * B + a)] = m[a][c];
    }
  }
  return t;
}

}  // namespace

sparse::StencilOperator make_ti_stencil(const TIParams& p) {
  require(p.nx >= 2 && p.ny >= 2 && p.nz >= 1,
          "TI stencil: nx, ny >= 2 so the site deltas are distinct");
  require(!p.periodic_x || p.nx > 2, "TI: periodic x needs Nx > 2");
  require(!p.periodic_y || p.ny > 2, "TI: periodic y needs Ny > 2");
  require(!p.periodic_z || p.nz > 2, "TI: periodic z needs Nz > 2");
  const global_index nxy = static_cast<global_index>(p.nx) * p.ny;
  const global_index nsites = nxy * p.nz;

  // Same block expressions as build_ti_hamiltonian: T_j below the diagonal,
  // T_j^dag above, V*Gamma0 + 2t*Gamma1 on site.
  const std::array<Mat4, 3> hop = {hopping_block(1, p.t), hopping_block(2, p.t),
                                   hopping_block(3, p.t)};
  std::vector<Term> terms;
  terms.reserve(7);
  terms.push_back(block_term<4>(-nxy, hop[2]));
  terms.push_back(block_term<4>(-p.nx, hop[1]));
  terms.push_back(block_term<4>(-1, hop[0]));
  terms.push_back(block_term<4>(0, onsite_block(0.0, p.t)));
  terms.push_back(block_term<4>(+1, adjoint(hop[0])));
  terms.push_back(block_term<4>(+p.nx, adjoint(hop[1])));
  terms.push_back(block_term<4>(+nxy, adjoint(hop[2])));

  // The external potential streams through the stencil diagonal; the kernel
  // merges it into the on-site coefficient exactly like onsite_block(v, t)
  // assembles v + (+-2t) (IEEE addition commutes bitwise).
  std::vector<double> diag;
  if (p.potential) {
    diag.reserve(static_cast<std::size_t>(p.dimension()));
    for (int z = 0; z < p.nz; ++z) {
      for (int y = 0; y < p.ny; ++y) {
        for (int x = 0; x < p.nx; ++x) {
          const double v = p.potential(Site{x, y, z});
          for (int o = 0; o < 4; ++o) diag.push_back(v);
        }
      }
    }
  }

  auto neighbor = [nx = p.nx, ny = p.ny, nz = p.nz, px = p.periodic_x,
                   py = p.periodic_y, pz = p.periodic_z](
                      global_index s, std::size_t term) -> global_index {
    static constexpr int axis[7] = {2, 1, 0, -1, 0, 1, 2};
    static constexpr int dir[7] = {-1, -1, -1, 0, +1, +1, +1};
    if (axis[term] < 0) return s;
    int c[3] = {static_cast<int>(s % nx), static_cast<int>((s / nx) % ny),
                static_cast<int>(s / (static_cast<global_index>(nx) * ny))};
    const int ext[3] = {nx, ny, nz};
    const bool per[3] = {px, py, pz};
    int& v = c[axis[term]];
    v += dir[term];
    if (v < 0 || v >= ext[axis[term]]) {
      if (!per[axis[term]]) return -1;
      v = (v + ext[axis[term]]) % ext[axis[term]];
    }
    return c[0] +
           static_cast<global_index>(nx) *
               (c[1] + static_cast<global_index>(ny) * c[2]);
  };

  return StencilOperator("ti", 4, nsites, std::move(terms), std::move(diag),
                         std::move(neighbor));
}

sparse::StencilOperator make_anderson_stencil(const AndersonParams& p) {
  require(p.nx >= 2 && p.ny >= 2 && p.nz >= 1,
          "Anderson stencil: nx, ny >= 2 so the site deltas are distinct");
  require(!p.periodic || (p.nx > 2 && p.ny > 2 && p.nz > 2),
          "Anderson: periodic BCs need extents > 2");
  const global_index nxy = static_cast<global_index>(p.nx) * p.ny;
  const global_index nsites = nxy * p.nz;

  // Negative deltas hold the direct -t entries, positive deltas the
  // std::conj()ed Hermitian halves (-t with a -0.0 imaginary part) — the
  // exact values build_anderson_hamiltonian stores.
  const bool disordered = p.disorder > 0.0;
  const complex_t hop{-p.t, 0.0};
  const complex_t hop_conj = std::conj(hop);
  std::vector<Term> terms;
  terms.reserve(7);
  for (const global_index d : {-nxy, static_cast<global_index>(-p.nx),
                               global_index{-1}, global_index{0},
                               global_index{+1},
                               static_cast<global_index>(p.nx), nxy}) {
    if (d == 0 && !disordered) continue;  // clean model has no diagonal
    Term t;
    t.delta = d;
    // Zero-coefficient on-site term: a placeholder for the streamed eps.
    if (d != 0) t.coeff[0] = d < 0 ? hop : hop_conj;
    terms.push_back(t);
  }

  // Disorder: the identical seeded draw sequence as the assembler (one eps
  // per site, sites visited in ascending index order).
  std::vector<double> diag;
  if (disordered) {
    std::mt19937_64 rng(p.seed);
    std::uniform_real_distribution<double> eps(-p.disorder / 2.0,
                                               p.disorder / 2.0);
    diag.reserve(static_cast<std::size_t>(nsites));
    for (global_index s = 0; s < nsites; ++s) diag.push_back(eps(rng));
  }

  auto neighbor = [nx = p.nx, ny = p.ny, nz = p.nz, per = p.periodic,
                   disordered](global_index s,
                               std::size_t term) -> global_index {
    // With the on-site term present the table matches the 7-point TI layout;
    // the clean model drops index 3.
    static constexpr int axis7[7] = {2, 1, 0, -1, 0, 1, 2};
    static constexpr int dir7[7] = {-1, -1, -1, 0, +1, +1, +1};
    static constexpr int axis6[6] = {2, 1, 0, 0, 1, 2};
    static constexpr int dir6[6] = {-1, -1, -1, +1, +1, +1};
    const int ax = disordered ? axis7[term] : axis6[term];
    const int dr = disordered ? dir7[term] : dir6[term];
    if (ax < 0) return s;
    int c[3] = {static_cast<int>(s % nx), static_cast<int>((s / nx) % ny),
                static_cast<int>(s / (static_cast<global_index>(nx) * ny))};
    const int ext[3] = {nx, ny, nz};
    int& v = c[ax];
    v += dr;
    if (v < 0 || v >= ext[ax]) {
      if (!per) return -1;
      v = (v + ext[ax]) % ext[ax];
    }
    return c[0] +
           static_cast<global_index>(nx) *
               (c[1] + static_cast<global_index>(ny) * c[2]);
  };

  return StencilOperator("anderson", 1, nsites, std::move(terms),
                         std::move(diag), std::move(neighbor));
}

sparse::StencilOperator make_graphene_stencil(const GrapheneParams& p) {
  require(p.ncells_x >= 2 && p.ncells_y >= 1,
          "graphene stencil: ncells_x >= 2 so the cell deltas are distinct");
  require(!p.periodic || (p.ncells_x > 2 && p.ncells_y > 2),
          "graphene: periodic BCs need extents > 2");
  const global_index ncx = p.ncells_x;
  const global_index nsites = ncx * p.ncells_y;

  // Sublattice A (row 0) couples to B (column 1) in this cell and the cells
  // at (-1, 0) and (0, -1) — the direct -t entries; the B rows hold the
  // std::conj()ed halves, exactly as assembled.
  const complex_t ab{-p.t, 0.0};         // (row A, col B): direct
  const complex_t ba = std::conj(ab);    // (row B, col A): conjugated half
  const complex_t z{};
  using Block2 = std::array<std::array<complex_t, 2>, 2>;
  const Block2 a_from_b = {{{z, ab}, {z, z}}};
  const Block2 onsite = {{{z, ab}, {ba, z}}};
  const Block2 b_from_a = {{{z, z}, {ba, z}}};
  std::vector<Term> terms;
  terms.reserve(5);
  terms.push_back(block_term<2>(-ncx, a_from_b));
  terms.push_back(block_term<2>(-1, a_from_b));
  terms.push_back(block_term<2>(0, onsite));
  terms.push_back(block_term<2>(+1, b_from_a));
  terms.push_back(block_term<2>(+ncx, b_from_a));

  std::vector<double> diag;
  if (p.potential) {
    diag.reserve(static_cast<std::size_t>(p.dimension()));
    for (int cy = 0; cy < p.ncells_y; ++cy) {
      for (int cx = 0; cx < p.ncells_x; ++cx) {
        for (int sub = 0; sub < 2; ++sub) {
          diag.push_back(p.potential(cx, cy, sub));
        }
      }
    }
  }

  auto neighbor = [nx = p.ncells_x, ny = p.ncells_y, per = p.periodic](
                      global_index s, std::size_t term) -> global_index {
    static constexpr int dx[5] = {0, -1, 0, +1, 0};
    static constexpr int dy[5] = {-1, 0, 0, 0, +1};
    int cx = static_cast<int>(s % nx) + dx[term];
    int cy = static_cast<int>(s / nx) + dy[term];
    if (cx < 0 || cx >= nx) {
      if (!per) return -1;
      cx = (cx + nx) % nx;
    }
    if (cy < 0 || cy >= ny) {
      if (!per) return -1;
      cy = (cy + ny) % ny;
    }
    return cx + static_cast<global_index>(nx) * cy;
  };

  return StencilOperator("graphene", 2, nsites, std::move(terms),
                         std::move(diag), std::move(neighbor));
}

sparse::StencilOperator make_ssh_stencil(const SshParams& p) {
  require(p.ncells >= 1, "SSH: at least one unit cell");
  require(!p.periodic || p.ncells > 2, "SSH: periodic chain needs > 2 cells");

  // Row A of cell c holds the *direct* t2 entry at B of cell c-1
  // (add_hermitian_pair(a_{c+1}, b_c, t2)) and the conjugated t1 at its own
  // B; row B holds the direct t1 and the conjugated t2 — bit-for-bit the
  // assembled values, signed zeros included.
  const complex_t t1{p.t1, 0.0};
  const complex_t t2{p.t2, 0.0};
  const complex_t z{};
  using Block2 = std::array<std::array<complex_t, 2>, 2>;
  const Block2 prev = {{{z, t2}, {z, z}}};
  const Block2 onsite = {{{z, std::conj(t1)}, {t1, z}}};
  const Block2 next = {{{z, z}, {std::conj(t2), z}}};
  std::vector<Term> terms;
  terms.reserve(3);
  terms.push_back(block_term<2>(-1, prev));
  terms.push_back(block_term<2>(0, onsite));
  terms.push_back(block_term<2>(+1, next));

  auto neighbor = [n = p.ncells, per = p.periodic](
                      global_index s, std::size_t term) -> global_index {
    static constexpr int dir[3] = {-1, 0, +1};
    const global_index c = s + dir[term];
    if (c < 0 || c >= n) {
      if (!per) return -1;
      return (c + n) % n;
    }
    return c;
  };

  return StencilOperator("ssh", 2, static_cast<global_index>(p.ncells),
                         std::move(terms), {}, std::move(neighbor));
}

}  // namespace kpm::physics
