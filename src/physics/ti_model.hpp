// 3D topological-insulator Hamiltonian (paper Eq. 1) on a finite
// Nx x Ny x Nz lattice with 4 spin-orbital components per site:
//
//   H = -t sum_n sum_{j=1,2,3} [ Psi^dag_{n+e_j} (Gamma1 - i Gamma_{j+1})/2 Psi_n + H.c. ]
//       + sum_n Psi^dag_n ( V_n Gamma0 + 2 Gamma1 ) Psi_n
//
// Matrix dimension N = 4 Nx Ny Nz, complex Hermitian, Nnz ~ 13 N.  Periodic
// boundary conditions in x and y produce the outlying corner diagonals the
// paper mentions; z is open (a slab) by default.  The external potential
// V_n models a quantum-dot superlattice or on-site disorder.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sparse/bsr.hpp"
#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::physics {

/// Lattice site coordinates.
struct Site {
  int x = 0;
  int y = 0;
  int z = 0;
};

/// Quantum-dot superlattice: dots of radius `radius` (in-plane) whose centres
/// form a square grid of period `period` in the x-y plane; inside a dot the
/// potential is `depth` (paper Fig. 2: radius 25, period D = 100,
/// VDot = 0.153).
struct DotLattice {
  double period = 100.0;
  double radius = 25.0;
  double depth = 0.153;
  /// Restrict the dots to the top surface layers z < surface_depth
  /// (set to Nz to fill the whole slab).
  int surface_depth = 1;

  [[nodiscard]] double potential(const Site& s) const;
};

struct TIParams {
  int nx = 10;
  int ny = 10;
  int nz = 4;
  double t = 1.0;
  bool periodic_x = true;
  bool periodic_y = true;
  bool periodic_z = false;
  /// External potential V_n; default none.
  std::function<double(const Site&)> potential;

  [[nodiscard]] global_index dimension() const {
    return 4LL * nx * ny * nz;
  }
};

/// Linear index of (site, orbital): 4*(x + Nx*(y + Ny*z)) + orbital.
[[nodiscard]] global_index site_index(const TIParams& p, const Site& s,
                                      int orbital);

/// Builds the sparse Hamiltonian.  The result is Hermitian by construction.
[[nodiscard]] sparse::CrsMatrix build_ti_hamiltonian(const TIParams& p);

/// Builds the same Hamiltonian directly in 4x4 block form — one dense site
/// block per (site, neighbour) pair, no COO/CRS round trip.  The nonzero
/// values are bitwise identical to build_ti_hamiltonian() (f64 precision);
/// MatrixPrecision::f32 narrows the stored values once at assembly.
[[nodiscard]] sparse::BsrMatrix build_ti_hamiltonian_bsr(
    const TIParams& p,
    sparse::MatrixPrecision precision = sparse::MatrixPrecision::f64);

/// Exact Bloch eigenvalues (4 per k point, two doubly-degenerate branches)
/// for the fully periodic, potential-free case — validation only.
/// Returns all N eigenvalues sorted ascending.
[[nodiscard]] std::vector<double> exact_ti_spectrum_periodic(const TIParams& p);

}  // namespace kpm::physics
