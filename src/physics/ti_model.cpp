#include "physics/ti_model.hpp"

#include <algorithm>
#include <cmath>

#include "physics/dirac.hpp"
#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::physics {

double DotLattice::potential(const Site& s) const {
  if (s.z >= surface_depth) return 0.0;
  // Distance to the nearest dot centre of the square superlattice.
  const double cx = std::round(s.x / period) * period;
  const double cy = std::round(s.y / period) * period;
  const double dx = s.x - cx;
  const double dy = s.y - cy;
  return dx * dx + dy * dy <= radius * radius ? depth : 0.0;
}

global_index site_index(const TIParams& p, const Site& s, int orbital) {
  return 4LL * (s.x + static_cast<global_index>(p.nx) *
                          (s.y + static_cast<global_index>(p.ny) * s.z)) +
         orbital;
}

sparse::CrsMatrix build_ti_hamiltonian(const TIParams& p) {
  require(p.nx >= 1 && p.ny >= 1 && p.nz >= 1, "TI: lattice extents >= 1");
  require(!p.periodic_x || p.nx > 2, "TI: periodic x needs Nx > 2");
  require(!p.periodic_y || p.ny > 2, "TI: periodic y needs Ny > 2");
  require(!p.periodic_z || p.nz > 2, "TI: periodic z needs Nz > 2");
  const global_index dim = p.dimension();
  sparse::CooMatrix coo(dim, dim);

  const std::array<Mat4, 3> hop = {hopping_block(1, p.t), hopping_block(2, p.t),
                                   hopping_block(3, p.t)};

  auto add_block = [&](global_index row_base, global_index col_base,
                       const Mat4& block) {
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (block[a][b] != complex_t{}) {
          coo.add(row_base + a, col_base + b, block[a][b]);
        }
      }
    }
  };

  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        const Site s{x, y, z};
        const global_index base = site_index(p, s, 0);
        const double v = p.potential ? p.potential(s) : 0.0;
        add_block(base, base, onsite_block(v, p.t));

        // Hopping n -> n+e_j contributes T_j at (n+e_j, n) and T_j^dag at
        // (n, n+e_j).
        const std::array<Site, 3> neighbor = {
            Site{x + 1, y, z}, Site{x, y + 1, z}, Site{x, y, z + 1}};
        const std::array<bool, 3> periodic = {p.periodic_x, p.periodic_y,
                                              p.periodic_z};
        const std::array<int, 3> extent = {p.nx, p.ny, p.nz};
        for (int j = 0; j < 3; ++j) {
          Site nb = neighbor[j];
          int& coord = j == 0 ? nb.x : (j == 1 ? nb.y : nb.z);
          if (coord >= extent[j]) {
            if (!periodic[j]) continue;
            coord = 0;
          }
          const global_index nb_base = site_index(p, nb, 0);
          add_block(nb_base, base, hop[j]);
          add_block(base, nb_base, adjoint(hop[j]));
        }
      }
    }
  }
  coo.compress();
  return sparse::CrsMatrix(coo);
}

sparse::BsrMatrix build_ti_hamiltonian_bsr(const TIParams& p,
                                           sparse::MatrixPrecision precision) {
  require(p.nx >= 1 && p.ny >= 1 && p.nz >= 1, "TI: lattice extents >= 1");
  require(!p.periodic_x || p.nx > 2, "TI: periodic x needs Nx > 2");
  require(!p.periodic_y || p.ny > 2, "TI: periodic y needs Ny > 2");
  require(!p.periodic_z || p.nz > 2, "TI: periodic z needs Nz > 2");
  const global_index dim = p.dimension();
  const global_index nsites = dim / 4;

  const std::array<Mat4, 3> hop = {hopping_block(1, p.t), hopping_block(2, p.t),
                                   hopping_block(3, p.t)};
  const std::array<Mat4, 3> hop_adj = {adjoint(hop[0]), adjoint(hop[1]),
                                       adjoint(hop[2])};

  aligned_vector<global_index> bptr;
  bptr.reserve(static_cast<std::size_t>(nsites) + 1);
  bptr.push_back(0);
  aligned_vector<local_index> bcol;
  aligned_vector<complex_t> vals;
  bcol.reserve(static_cast<std::size_t>(nsites) * 7);
  vals.reserve(static_cast<std::size_t>(nsites) * 7 * 16);

  std::vector<std::pair<global_index, const Mat4*>> row;  // (site col, block)
  for (int z = 0; z < p.nz; ++z) {
    for (int y = 0; y < p.ny; ++y) {
      for (int x = 0; x < p.nx; ++x) {
        const Site s{x, y, z};
        const global_index n = site_index(p, s, 0) / 4;
        const double v = p.potential ? p.potential(s) : 0.0;
        const Mat4 onsite = onsite_block(v, p.t);
        row.clear();
        row.emplace_back(n, &onsite);
        // Row n couples to n+e_j via T_j^dag and to n-e_j via T_j (the two
        // halves of the Hermitian pair the COO assembler emits).
        const std::array<bool, 3> periodic = {p.periodic_x, p.periodic_y,
                                              p.periodic_z};
        const std::array<int, 3> extent = {p.nx, p.ny, p.nz};
        for (int j = 0; j < 3; ++j) {
          for (const int dir : {+1, -1}) {
            Site nb = s;
            int& coord = j == 0 ? nb.x : (j == 1 ? nb.y : nb.z);
            coord += dir;
            if (coord >= extent[j] || coord < 0) {
              if (!periodic[j]) continue;
              coord = (coord + extent[j]) % extent[j];
            }
            row.emplace_back(site_index(p, nb, 0) / 4,
                             dir > 0 ? &hop_adj[j] : &hop[j]);
          }
        }
        std::sort(row.begin(), row.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        for (const auto& [col, blk] : row) {
          const bool fresh =
              static_cast<global_index>(bcol.size()) == bptr.back() ||
              bcol.back() != static_cast<local_index>(col);
          if (fresh) {
            bcol.push_back(static_cast<local_index>(col));
            vals.resize(vals.size() + 16, complex_t{});
          }
          // Column-major within the 4x4 block (the BsrMatrix layout).  A
          // fresh block is *assigned*, not accumulated: 0.0 + (-0.0) would
          // flip negatively-signed zero parts and break the bitwise match
          // with the COO/CRS assembler.
          complex_t* dst = vals.data() + vals.size() - 16;
          for (int a = 0; a < 4; ++a) {
            for (int b = 0; b < 4; ++b) {
              if (fresh) {
                dst[4 * b + a] = (*blk)[a][b];
              } else {
                dst[4 * b + a] += (*blk)[a][b];
              }
            }
          }
        }
        bptr.push_back(static_cast<global_index>(bcol.size()));
      }
    }
  }
  return sparse::BsrMatrix(dim, dim, 4, std::move(bptr), std::move(bcol),
                           std::move(vals), precision);
}

std::vector<double> exact_ti_spectrum_periodic(const TIParams& p) {
  require(p.periodic_x && p.periodic_y && p.periodic_z && !p.potential,
          "exact spectrum: fully periodic, potential-free case only");
  // H(k) = Gamma1 (2t - t sum_j cos k_j) + t sum_j Gamma_{j+1} sin k_j
  // => E(k) = +- sqrt( (2t - t sum cos)^2 + t^2 sum sin^2 ), each twice.
  std::vector<double> evals;
  evals.reserve(static_cast<std::size_t>(p.dimension()));
  for (int ix = 0; ix < p.nx; ++ix) {
    for (int iy = 0; iy < p.ny; ++iy) {
      for (int iz = 0; iz < p.nz; ++iz) {
        const double kx = 2.0 * pi * ix / p.nx;
        const double ky = 2.0 * pi * iy / p.ny;
        const double kz = 2.0 * pi * iz / p.nz;
        const double mass =
            2.0 * p.t - p.t * (std::cos(kx) + std::cos(ky) + std::cos(kz));
        const double kin2 =
            p.t * p.t * (std::sin(kx) * std::sin(kx) +
                         std::sin(ky) * std::sin(ky) +
                         std::sin(kz) * std::sin(kz));
        const double e = std::sqrt(mass * mass + kin2);
        evals.push_back(-e);
        evals.push_back(-e);
        evals.push_back(e);
        evals.push_back(e);
      }
    }
  }
  std::sort(evals.begin(), evals.end());
  return evals;
}

}  // namespace kpm::physics
