#include "physics/spectral_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "blas/level1.hpp"
#include "physics/dense_eigen.hpp"
#include "sparse/spmv.hpp"
#include "sparse/stencil.hpp"
#include "util/aligned.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace kpm::physics {

SpectralInterval gershgorin_bounds(const sparse::CrsMatrix& h) {
  require(h.nrows() == h.ncols(), "gershgorin: square matrix required");
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (global_index i = 0; i < h.nrows(); ++i) {
    const auto cols = h.row_cols(i);
    const auto vals = h.row_values(i);
    double center = 0.0;
    double radius = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) {
        // Hermitian => real diagonal.
        center = vals[k].real();
      } else {
        radius += std::abs(vals[k]);
      }
    }
    if (first || center - radius < lo) lo = center - radius;
    if (first || center + radius > hi) hi = center + radius;
    first = false;
  }
  return {lo, hi};
}

SpectralInterval gershgorin_bounds(const sparse::StencilOperator& h) {
  require(h.nrows() == h.ncols(),
          "gershgorin: global-form (square) stencil required");
  const int b = h.block_dim();
  // One disc template per orbital: the interior rows of one ib all share
  // the term-table center/radius and differ only in the diagonal stream.
  std::vector<double> base_center(static_cast<std::size_t>(b), 0.0);
  std::vector<double> base_radius(static_cast<std::size_t>(b), 0.0);
  const auto terms = h.terms();
  for (int ib = 0; ib < b; ++ib) {
    for (std::size_t t = 0; t < terms.size(); ++t) {
      for (int jb = 0; jb < b; ++jb) {
        if ((terms[t].mask >> (jb * b + ib) & 1u) == 0) continue;
        const complex_t c = terms[t].coeff[static_cast<std::size_t>(jb * b + ib)];
        if (static_cast<int>(t) == h.onsite_term() && jb == ib) {
          base_center[static_cast<std::size_t>(ib)] = c.real();
        } else {
          base_radius[static_cast<std::size_t>(ib)] += std::abs(c);
        }
      }
    }
  }
  const auto diag = h.diag();
  const auto bptr = h.boundary_ptr();
  const auto bcol = h.boundary_col();
  const auto bval = h.boundary_val();
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  auto widen = [&](double center, double radius) {
    if (first || center - radius < lo) lo = center - radius;
    if (first || center + radius > hi) hi = center + radius;
    first = false;
  };
  for (const auto& seg : h.segments()) {
    if (seg.interior) {
      for (global_index g = seg.begin; g < seg.end; ++g) {
        const auto ib =
            static_cast<std::size_t>((g + h.row_phase()) % b);
        const double d =
            h.has_diag() ? diag[static_cast<std::size_t>(g)] : 0.0;
        widen(base_center[ib] + d, base_radius[ib]);
      }
    } else {
      for (global_index g = seg.begin; g < seg.end; ++g) {
        const auto r =
            static_cast<std::size_t>(seg.bnd_row0 + (g - seg.begin));
        double center = 0.0;
        double radius = 0.0;
        for (auto k = bptr[r]; k < bptr[r + 1]; ++k) {
          const auto idx = static_cast<std::size_t>(k);
          if (static_cast<global_index>(bcol[idx]) == g) {
            center = bval[idx].real();  // diag stream already merged
          } else {
            radius += std::abs(bval[idx]);
          }
        }
        widen(center, radius);
      }
    }
  }
  return {lo, hi};
}

SpectralInterval lanczos_bounds(const sparse::CrsMatrix& h, int sweeps,
                                std::uint64_t seed) {
  require(h.nrows() == h.ncols(), "lanczos: square matrix required");
  require(sweeps >= 2, "lanczos: need at least 2 sweeps");
  const auto n = static_cast<std::size_t>(h.nrows());
  sweeps = static_cast<int>(
      std::min<global_index>(sweeps, h.nrows()));

  aligned_vector<complex_t> q_prev(n, complex_t{});
  aligned_vector<complex_t> q(n);
  aligned_vector<complex_t> w(n);
  RandomVectorSource rng(seed);
  rng.fill(q);

  std::vector<aligned_vector<complex_t>> basis;  // full reorthogonalization
  basis.push_back(q);
  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples q_j and q_{j+1}

  for (int j = 0; j < sweeps; ++j) {
    sparse::spmv(h, q, w);
    const complex_t a = blas::dot(q, w);
    alpha.push_back(a.real());
    // w <- w - alpha q - beta q_prev
    blas::axpy(-a, q, w);
    if (j > 0) blas::axpy({-beta.back(), 0.0}, q_prev, w);
    // Full reorthogonalization for numerical robustness at small n.
    for (const auto& v : basis) {
      const complex_t overlap = blas::dot(v, w);
      blas::axpy(-overlap, v, w);
    }
    const double b = blas::nrm2(w);
    if (b < 1e-13 || j == sweeps - 1) break;
    beta.push_back(b);
    q_prev = q;
    for (std::size_t i = 0; i < n; ++i) q[i] = w[i] / b;
    basis.push_back(q);
  }

  // Eigenvalues of the tridiagonal Rayleigh matrix via the dense solver.
  const int m = static_cast<int>(alpha.size());
  std::vector<double> tri(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    tri[static_cast<std::size_t>(i) * m + i] = alpha[static_cast<std::size_t>(i)];
    if (i + 1 < m) {
      tri[static_cast<std::size_t>(i) * m + i + 1] =
          beta[static_cast<std::size_t>(i)];
      tri[static_cast<std::size_t>(i + 1) * m + i] =
          beta[static_cast<std::size_t>(i)];
    }
  }
  const auto ritz = eigenvalues_symmetric(std::move(tri), m);
  return {ritz.front(), ritz.back()};
}

Scaling make_scaling(const SpectralInterval& iv, double epsilon) {
  require(iv.upper > iv.lower, "make_scaling: empty spectral interval");
  require(epsilon > 0.0 && epsilon < 1.0, "make_scaling: epsilon in (0,1)");
  Scaling s;
  s.b = iv.center();
  s.a = (1.0 - epsilon / 2.0) / iv.half_width();
  return s;
}

}  // namespace kpm::physics
