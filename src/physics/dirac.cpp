#include "physics/dirac.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kpm::physics {
namespace {

constexpr complex_t c0{0.0, 0.0};
constexpr complex_t c1{1.0, 0.0};
constexpr complex_t ci{0.0, 1.0};

Mat4 make_gamma(int a) {
  Mat4 g{};
  switch (a) {
    case 0:  // identity
      for (int i = 0; i < 4; ++i) g[i][i] = c1;
      break;
    case 1:  // tau_z (x) I2 = diag(1, 1, -1, -1)
      g[0][0] = c1;
      g[1][1] = c1;
      g[2][2] = -c1;
      g[3][3] = -c1;
      break;
    case 2:  // tau_x (x) sigma_x
      g[0][3] = c1;
      g[1][2] = c1;
      g[2][1] = c1;
      g[3][0] = c1;
      break;
    case 3:  // tau_x (x) sigma_y
      g[0][3] = -ci;
      g[1][2] = ci;
      g[2][1] = -ci;
      g[3][0] = ci;
      break;
    case 4:  // tau_x (x) sigma_z
      g[0][2] = c1;
      g[1][3] = -c1;
      g[2][0] = c1;
      g[3][1] = -c1;
      break;
    default:
      require(false, "gamma index must be in {0..4}");
  }
  return g;
}

}  // namespace

const Mat4& gamma(int a) {
  require(a >= 0 && a <= 4, "gamma index must be in {0..4}");
  static const std::array<Mat4, 5> cache = {
      make_gamma(0), make_gamma(1), make_gamma(2), make_gamma(3),
      make_gamma(4)};
  return cache[static_cast<std::size_t>(a)];
}

Mat4 add(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) out[i][j] = a[i][j] + b[i][j];
  return out;
}

Mat4 scale(complex_t s, const Mat4& a) {
  Mat4 out{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) out[i][j] = s * a[i][j];
  return out;
}

Mat4 multiply(const Mat4& a, const Mat4& b) {
  Mat4 out{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      complex_t acc = c0;
      for (int k = 0; k < 4; ++k) acc += a[i][k] * b[k][j];
      out[i][j] = acc;
    }
  }
  return out;
}

Mat4 adjoint(const Mat4& a) {
  Mat4 out{};
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) out[i][j] = std::conj(a[j][i]);
  return out;
}

Mat4 anticommutator(const Mat4& a, const Mat4& b) {
  return add(multiply(a, b), multiply(b, a));
}

bool approx_equal(const Mat4& a, const Mat4& b, double tol) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (std::abs(a[i][j] - b[i][j]) > tol) return false;
  return true;
}

Mat4 identity4() { return gamma(0); }
Mat4 zero4() { return Mat4{}; }

Mat4 hopping_block(int j, double t) {
  require(j >= 1 && j <= 3, "hopping direction must be 1, 2 or 3");
  // T_j = -t (Gamma1 - i Gamma_{j+1}) / 2
  return scale({-t / 2.0, 0.0}, add(gamma(1), scale(-ci, gamma(j + 1))));
}

Mat4 onsite_block(double potential, double t) {
  // V * Gamma0 + 2t * Gamma1 (the Wilson mass term scales with the hopping).
  return add(scale({potential, 0.0}, gamma(0)),
             scale({2.0 * t, 0.0}, gamma(1)));
}

}  // namespace kpm::physics
