// Spectral interval estimation for the KPM rescaling H~ = a(H - b·1).
//
// The Chebyshev expansion requires spec(H~) ⊂ [-1, 1].  The paper (Sec. II)
// determines suitable a, b "with Gershgorin's circle theorem or a few
// Lanczos sweeps"; both are provided here.
#pragma once

#include <cstdint>

#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::sparse {
class StencilOperator;
}

namespace kpm::physics {

struct SpectralInterval {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] double center() const noexcept { return 0.5 * (lower + upper); }
  [[nodiscard]] double half_width() const noexcept {
    return 0.5 * (upper - lower);
  }
};

/// Scaling pair of H~ = a(H - b·1).
struct Scaling {
  double a = 1.0;  ///< 1 / half-width (with safety margin)
  double b = 0.0;  ///< spectrum centre

  /// Maps an eigenvalue of H to the Chebyshev variable x in [-1, 1].
  [[nodiscard]] double to_unit(double e) const noexcept { return a * (e - b); }
  /// Inverse map.
  [[nodiscard]] double to_energy(double x) const noexcept {
    return x / a + b;
  }
};

/// Gershgorin circle theorem bound: every eigenvalue lies in the union of
/// discs centred at a_ii with radius sum_{j != i} |a_ij|.  Cheap, safe,
/// usually loose by a factor of ~1.3-2 for stencil matrices.
[[nodiscard]] SpectralInterval gershgorin_bounds(const sparse::CrsMatrix& h);

/// Matrix-free Gershgorin bound on a (global-form) stencil operator: the
/// interior disc per orbital comes straight from the term table (one
/// center/radius per ib, plus the per-row diagonal stream), boundary rows
/// from their stored entry lists — no assembled matrix is ever needed, and
/// the result equals gershgorin_bounds() of the assembled CRS.
[[nodiscard]] SpectralInterval gershgorin_bounds(
    const sparse::StencilOperator& h);

/// Extremal eigenvalue estimate from `sweeps` Lanczos iterations with full
/// reorthogonalization.  Tight but a lower bound on the spectral radius, so
/// callers should add a safety margin.
[[nodiscard]] SpectralInterval lanczos_bounds(const sparse::CrsMatrix& h,
                                              int sweeps = 30,
                                              std::uint64_t seed = 123);

/// Builds the scaling from an interval, shrinking by `epsilon` (paper
/// convention: a = (1 - eps/2) / half_width keeps the spectrum strictly
/// inside [-1, 1]).
[[nodiscard]] Scaling make_scaling(const SpectralInterval& iv,
                                   double epsilon = 0.01);

}  // namespace kpm::physics
