#include "physics/graphene.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::physics {

sparse::CrsMatrix build_graphene_hamiltonian(const GrapheneParams& p) {
  require(p.ncells_x >= 1 && p.ncells_y >= 1, "graphene: extents >= 1");
  require(!p.periodic || (p.ncells_x > 2 && p.ncells_y > 2),
          "graphene: periodic BCs need extents > 2");
  const global_index dim = p.dimension();
  sparse::CooMatrix coo(dim, dim);

  auto index = [&](int cx, int cy, int sub) {
    return 2 * (static_cast<global_index>(cx) +
                static_cast<global_index>(p.ncells_x) * cy) +
           sub;
  };
  auto wrap = [&](int c, int extent, bool& valid) {
    if (c >= 0 && c < extent) return c;
    if (!p.periodic) {
      valid = false;
      return 0;
    }
    return (c % extent + extent) % extent;
  };

  for (int cy = 0; cy < p.ncells_y; ++cy) {
    for (int cx = 0; cx < p.ncells_x; ++cx) {
      for (int sub = 0; sub < 2; ++sub) {
        if (p.potential) {
          const double v = p.potential(cx, cy, sub);
          if (v != 0.0) coo.add(index(cx, cy, sub), index(cx, cy, sub),
                                {v, 0.0});
        }
      }
      // Sublattice A (sub=0) couples to B (sub=1) in the same cell and the
      // cells at (-1, 0) and (0, -1).
      const global_index a = index(cx, cy, 0);
      const int nb[3][2] = {{cx, cy}, {cx - 1, cy}, {cx, cy - 1}};
      for (const auto& n : nb) {
        bool valid = true;
        const int bx = wrap(n[0], p.ncells_x, valid);
        const int by = wrap(n[1], p.ncells_y, valid);
        if (!valid) continue;
        coo.add_hermitian_pair(a, index(bx, by, 1), {-p.t, 0.0});
      }
    }
  }
  coo.compress();
  return sparse::CrsMatrix(coo);
}

std::vector<double> exact_graphene_spectrum_clean(const GrapheneParams& p) {
  require(!p.potential && p.periodic, "exact spectrum: clean periodic sheet");
  std::vector<double> evals;
  evals.reserve(static_cast<std::size_t>(p.dimension()));
  for (int ix = 0; ix < p.ncells_x; ++ix) {
    for (int iy = 0; iy < p.ncells_y; ++iy) {
      const double k1 = 2.0 * pi * ix / p.ncells_x;
      const double k2 = 2.0 * pi * iy / p.ncells_y;
      const std::complex<double> f =
          1.0 + std::polar(1.0, k1) + std::polar(1.0, k2);
      const double e = p.t * std::abs(f);
      evals.push_back(-e);
      evals.push_back(e);
    }
  }
  std::sort(evals.begin(), evals.end());
  return evals;
}

}  // namespace kpm::physics
