// Graphene honeycomb lattice, nearest-neighbour tight binding.
//
// The paper's introduction cites graphene quantum-dot superlattices
// (Pieper et al., PRB 89, 165121) as a companion application; this builder
// provides the honeycomb Hamiltonian with an optional dot potential so the
// examples can exercise the KPM pipeline on a second realistic lattice.
#pragma once

#include <functional>

#include "sparse/crs.hpp"
#include "util/types.hpp"

namespace kpm::physics {

struct GrapheneParams {
  int ncells_x = 32;       ///< unit cells along a1
  int ncells_y = 32;       ///< unit cells along a2
  double t = 1.0;          ///< hopping
  bool periodic = true;
  /// Optional potential evaluated at (cell_x, cell_y, sublattice in {0,1}).
  std::function<double(int, int, int)> potential;

  [[nodiscard]] global_index dimension() const {
    return 2LL * ncells_x * ncells_y;
  }
};

[[nodiscard]] sparse::CrsMatrix build_graphene_hamiltonian(
    const GrapheneParams& p);

/// Exact spectrum of the clean periodic sheet:
/// E(k) = +-t |1 + e^{ik·a1} + e^{ik·a2}|.  Sorted ascending.
[[nodiscard]] std::vector<double> exact_graphene_spectrum_clean(
    const GrapheneParams& p);

}  // namespace kpm::physics
