#include "physics/ssh_chain.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "sparse/coo.hpp"
#include "util/check.hpp"

namespace kpm::physics {

sparse::CrsMatrix build_ssh_hamiltonian(const SshParams& p) {
  require(p.ncells >= 1, "SSH: at least one unit cell");
  require(!p.periodic || p.ncells > 2, "SSH: periodic chain needs > 2 cells");
  const global_index dim = p.dimension();
  sparse::CooMatrix coo(dim, dim);
  auto a_site = [](int cell) { return 2LL * cell; };
  auto b_site = [](int cell) { return 2LL * cell + 1; };
  for (int cell = 0; cell < p.ncells; ++cell) {
    coo.add_hermitian_pair(b_site(cell), a_site(cell), {p.t1, 0.0});
    if (cell + 1 < p.ncells) {
      coo.add_hermitian_pair(a_site(cell + 1), b_site(cell), {p.t2, 0.0});
    } else if (p.periodic) {
      coo.add_hermitian_pair(a_site(0), b_site(cell), {p.t2, 0.0});
    }
  }
  coo.compress();
  return sparse::CrsMatrix(coo);
}

std::vector<double> exact_ssh_spectrum_periodic(const SshParams& p) {
  require(p.periodic, "exact SSH spectrum: periodic chain only");
  std::vector<double> evals;
  evals.reserve(static_cast<std::size_t>(p.dimension()));
  for (int ik = 0; ik < p.ncells; ++ik) {
    const double k = 2.0 * pi * ik / p.ncells;
    const double e = std::abs(p.t1 + p.t2 * std::polar(1.0, k));
    evals.push_back(-e);
    evals.push_back(e);
  }
  std::sort(evals.begin(), evals.end());
  return evals;
}

}  // namespace kpm::physics
