#include "perfmodel/machine.hpp"

namespace kpm::perfmodel {

// Table II of the paper; the llc/tex bandwidth figures are calibrated
// estimates consistent with the measured saturation levels in Figs. 8-10
// (IVB L3 ~ 220 GB/s sustained; K20m L2 ~ 650 GB/s, texture ~ 950 GB/s).

const MachineSpec& machine_ivb() {
  static const MachineSpec m{
      .name = "IVB",
      .clock_mhz = 2200,
      .simd_bytes = 32,
      .cores = 10,
      .mem_bw_gbs = 50,
      .llc_mib = 25,
      .peak_gflops = 176,
      .is_gpu = false,
      .llc_bw_gbs = 165,
      .tex_bw_gbs = 0,
      .l2_line_bytes = 64,
      .pcie_bw_gbs = 6.0,
      .tdp_watts = 95.0,
  };
  return m;
}

const MachineSpec& machine_snb() {
  static const MachineSpec m{
      .name = "SNB",
      .clock_mhz = 2600,
      .simd_bytes = 32,
      .cores = 8,
      .mem_bw_gbs = 48,
      .llc_mib = 20,
      .peak_gflops = 166.4,
      .is_gpu = false,
      .llc_bw_gbs = 95,
      .tex_bw_gbs = 0,
      .l2_line_bytes = 64,
      .pcie_bw_gbs = 6.0,
      .tdp_watts = 115.0,
  };
  return m;
}

const MachineSpec& machine_k20m() {
  static const MachineSpec m{
      .name = "K20m",
      .clock_mhz = 706,
      .simd_bytes = 512,  // 32 threads x 16 B
      .cores = 13,        // SMX units
      .mem_bw_gbs = 150,
      .llc_mib = 1.25,
      .peak_gflops = 1174,
      .is_gpu = true,
      .llc_bw_gbs = 650,
      .tex_bw_gbs = 950,
      .l2_line_bytes = 128,
      .pcie_bw_gbs = 6.0,
      .tdp_watts = 225.0,
  };
  return m;
}

const MachineSpec& machine_k20x() {
  static const MachineSpec m{
      .name = "K20X",
      .clock_mhz = 732,
      .simd_bytes = 512,
      .cores = 14,
      .mem_bw_gbs = 170,
      .llc_mib = 1.5,
      .peak_gflops = 1311,
      .is_gpu = true,
      .llc_bw_gbs = 680,
      .tex_bw_gbs = 1000,
      .l2_line_bytes = 128,
      .pcie_bw_gbs = 6.0,
      .tdp_watts = 235.0,
  };
  return m;
}

const MachineSpec& machine_knc() {
  static const MachineSpec m{
      .name = "KNC",
      .clock_mhz = 1053,
      .simd_bytes = 64,
      .cores = 60,
      .mem_bw_gbs = 160,
      .llc_mib = 30,  // aggregated per-core L2
      .peak_gflops = 1011,
      .is_gpu = false,
      .llc_bw_gbs = 450,
      .tex_bw_gbs = 0,
      .l2_line_bytes = 64,
      .pcie_bw_gbs = 6.0,
      .tdp_watts = 225.0,
  };
  return m;
}

std::vector<const MachineSpec*> table2_machines() {
  return {&machine_ivb(), &machine_snb(), &machine_k20m(), &machine_k20x()};
}

}  // namespace kpm::perfmodel
