// Data traffic and code balance models — paper Table I and Eqs. (4)-(7).
//
// All quantities are *minimum* values: every operand touched exactly once.
// Sd = 16 B (complex double), Si = 4 B (32-bit index), Fa = 2, Fm = 6 flops
// for complex add/multiply (src/util/types.hpp).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace kpm::perfmodel {

/// Problem size parameters of a KPM run.
struct KpmWorkload {
  double n = 0.0;        ///< matrix dimension N
  double nnz = 0.0;      ///< stored non-zeros
  int num_random = 1;    ///< R
  int num_moments = 0;   ///< M (the paper counts M/2 inner iterations)

  [[nodiscard]] double nnzr() const { return nnz / n; }
  [[nodiscard]] double inner_iterations() const { return num_moments / 2.0; }
};

/// One row of paper Table I.
struct FunctionCost {
  std::string name;
  double calls = 0.0;          ///< total invocations for the whole solver
  double min_bytes_per_call = 0.0;
  double flops_per_call = 0.0;

  [[nodiscard]] double total_bytes() const { return calls * min_bytes_per_call; }
  [[nodiscard]] double total_flops() const { return calls * flops_per_call; }
};

/// The rows of Table I (spmv, axpy, scal, nrm2, dot, and the KPM total).
[[nodiscard]] std::vector<FunctionCost> table1(const KpmWorkload& w);

/// Total flops of the solver (identical for all three stages):
/// RM/2 [ Nnz(Fa+Fm) + N(7Fa/2 + 9Fm/2) ].
[[nodiscard]] double kpm_total_flops(const KpmWorkload& w);

/// Minimum solver traffic V_KPM in bytes for each optimization stage (Eq. 4).
[[nodiscard]] double traffic_naive(const KpmWorkload& w);
[[nodiscard]] double traffic_aug_spmv(const KpmWorkload& w);
[[nodiscard]] double traffic_aug_spmmv(const KpmWorkload& w);

/// Minimum code balance Bmin(R) in bytes/flop (Eq. 5) for the blocked
/// kernel, given the average row population Nnzr.
[[nodiscard]] double bmin(double nnzr, int num_random);

/// Asymptotic balance lim R->inf (Eq. 7).
[[nodiscard]] double bmin_limit(double nnzr);

/// Traffic excess factor Omega = V_measured / V_KPM (Eq. 8 context).
[[nodiscard]] double omega(double measured_bytes, double model_bytes);

/// Minimum code balance of a *general* SpMV (no special matrix properties):
/// one value + one index per non-zero, streamed once, against one
/// multiply-add per non-zero.  The paper's introduction quotes the limits
/// 6 bytes/flop (double) and 2.5 bytes/flop (double complex), which this
/// reproduces with (data_bytes, index_bytes, flops) = (8, 4, 2) and
/// (16, 4, 8).  Vector traffic is neglected (nnzr >> 1 regime).
[[nodiscard]] double general_spmv_balance(double data_bytes,
                                          double index_bytes,
                                          double flops_per_entry);

}  // namespace kpm::perfmodel
