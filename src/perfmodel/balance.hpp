// Data traffic and code balance models — paper Table I and Eqs. (4)-(7).
//
// All quantities are *minimum* values: every operand touched exactly once.
// Sd = 16 B (complex double), Si = 4 B (32-bit index), Fa = 2, Fm = 6 flops
// for complex add/multiply (src/util/types.hpp).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace kpm::perfmodel {

/// Problem size parameters of a KPM run.
struct KpmWorkload {
  double n = 0.0;        ///< matrix dimension N
  double nnz = 0.0;      ///< stored non-zeros
  int num_random = 1;    ///< R
  int num_moments = 0;   ///< M (the paper counts M/2 inner iterations)

  [[nodiscard]] double nnzr() const { return nnz / n; }
  [[nodiscard]] double inner_iterations() const { return num_moments / 2.0; }
};

/// One row of paper Table I.
struct FunctionCost {
  std::string name;
  double calls = 0.0;          ///< total invocations for the whole solver
  double min_bytes_per_call = 0.0;
  double flops_per_call = 0.0;

  [[nodiscard]] double total_bytes() const { return calls * min_bytes_per_call; }
  [[nodiscard]] double total_flops() const { return calls * flops_per_call; }
};

/// The rows of Table I (spmv, axpy, scal, nrm2, dot, and the KPM total).
[[nodiscard]] std::vector<FunctionCost> table1(const KpmWorkload& w);

/// Total flops of the solver (identical for all three stages):
/// RM/2 [ Nnz(Fa+Fm) + N(7Fa/2 + 9Fm/2) ].
[[nodiscard]] double kpm_total_flops(const KpmWorkload& w);

/// Minimum solver traffic V_KPM in bytes for each optimization stage (Eq. 4).
[[nodiscard]] double traffic_naive(const KpmWorkload& w);
[[nodiscard]] double traffic_aug_spmv(const KpmWorkload& w);
[[nodiscard]] double traffic_aug_spmmv(const KpmWorkload& w);

/// Minimum code balance Bmin(R) in bytes/flop (Eq. 5) for the blocked
/// kernel, given the average row population Nnzr.
[[nodiscard]] double bmin(double nnzr, int num_random);

/// Asymptotic balance lim R->inf (Eq. 7).
[[nodiscard]] double bmin_limit(double nnzr);

/// Traffic excess factor Omega = V_measured / V_KPM (Eq. 8 context).
[[nodiscard]] double omega(double measured_bytes, double model_bytes);

/// Storage-format description feeding the per-format balance formulas of
/// DESIGN §5f.  The three knobs are exactly what a block format changes
/// relative to scalar CRS: bytes per stored value (8 for complex float),
/// index-stream bytes amortized per stored value (4 for CRS; index_bits/8
/// plus the 2-byte occupancy word per b^2 values for BSR), and the block
/// fill beta = nnz / stored values (explicit zero fill streams bytes but
/// contributes no useful flops).  Per-block-row decode seeds (4 B / block
/// row on the 16-bit path) are O(1/blocks-per-row) and excluded, matching
/// the other Bmin formulas' neglect of row-pointer traffic.
struct FormatSpec {
  double value_bytes = 16.0;
  double index_bytes_per_value = 4.0;
  double fill = 1.0;
};

/// Scalar CRS: 16 B value + 4 B index per nonzero, no fill.
[[nodiscard]] FormatSpec crs_format();

/// b x b block format (BSR or SELL-block): `fill` from
/// sparse::BsrMatrix::fill_ratio() or matrix_stats, `value_bytes` 16 (f64)
/// or 8 (f32), `index_bits` 32 or 16.  The per-block index share includes
/// the 2-byte occupancy mask the kernel streams alongside the indices.
[[nodiscard]] FormatSpec block_format(int block_dim, double fill,
                                      double value_bytes, int index_bits);

/// Matrix-free stencil (DESIGN §5h): the per-sweep matrix stream collapses
/// to what the operator actually stores — the optional f64 diagonal
/// (8 B/row) plus the O(surface) boundary entry lists and the term
/// descriptors.  Pass StencilOperator::stored_bytes() and nnz(); the spec
/// carries the residual bytes-per-nonzero directly (no index stream, no
/// fill), so the same Bmin / traffic formulas apply.  For a clean stencil
/// (no diagonal) this approaches 0 B/nnz — the Nnz*(Sd+Si) term of Eq. 5
/// eliminated, leaving only the 3*Sd vector term.
[[nodiscard]] FormatSpec stencil_format(double stored_bytes, double nnz);

/// Matrix-stream bytes per scalar nonzero: (Sd' + Si') / beta.  20 for
/// scalar CRS; the analytic floor a compressed block format must undercut
/// for the matrix term of the code balance to improve.
[[nodiscard]] double format_bytes_per_nnz(const FormatSpec& f);

/// Per-format Bmin(R) (Eq. 5 with the matrix term generalized): the
/// vector term 3 Sd and the useful flops (counted on nnz, not on the
/// zero fill) are format-independent.
[[nodiscard]] double bmin_format(const FormatSpec& f, double nnzr,
                                 int num_random);

/// Minimum solver traffic of the blocked kernel on this format (the
/// generalization of traffic_aug_spmmv).
[[nodiscard]] double traffic_aug_spmmv_format(const KpmWorkload& w,
                                              const FormatSpec& f);

/// Minimum code balance of a *general* SpMV (no special matrix properties):
/// one value + one index per non-zero, streamed once, against one
/// multiply-add per non-zero.  The paper's introduction quotes the limits
/// 6 bytes/flop (double) and 2.5 bytes/flop (double complex), which this
/// reproduces with (data_bytes, index_bytes, flops) = (8, 4, 2) and
/// (16, 4, 8).  Vector traffic is neglected (nnzr >> 1 regime).
[[nodiscard]] double general_spmv_balance(double data_bytes,
                                          double index_bytes,
                                          double flops_per_entry);

}  // namespace kpm::perfmodel
