#include "perfmodel/roofline.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace kpm::perfmodel {

double roofline(const MachineSpec& m, double code_balance) {
  require(code_balance > 0, "roofline: balance must be positive");
  return std::min(m.peak_gflops, m.mem_bw_gbs / code_balance);
}

double roofline_mem(const MachineSpec& m, double code_balance) {
  require(code_balance > 0, "roofline_mem: balance must be positive");
  return m.mem_bw_gbs / code_balance;
}

double roofline_llc(const MachineSpec& m, double llc_balance) {
  require(llc_balance > 0, "roofline_llc: balance must be positive");
  require(m.llc_bw_gbs > 0, "roofline_llc: machine lacks an LLC bandwidth");
  return std::min(m.peak_gflops, m.llc_bw_gbs / llc_balance);
}

double roofline_refined(const MachineSpec& m, double mem_balance,
                        double llc_balance) {
  return std::min(roofline_mem(m, mem_balance), roofline_llc(m, llc_balance));
}

double roofline_cores(const MachineSpec& m, int cores, double code_balance) {
  require(cores >= 1 && cores <= m.cores, "roofline_cores: invalid core count");
  // Memory bandwidth is a shared socket resource; peak scales with cores.
  const double peak = m.core_peak_gflops() * cores;
  return std::min(peak, m.mem_bw_gbs / code_balance);
}

}  // namespace kpm::perfmodel
