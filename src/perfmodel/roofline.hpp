// Roofline performance models — paper Eqs. (9)-(11).
#pragma once

#include "perfmodel/balance.hpp"
#include "perfmodel/machine.hpp"

namespace kpm::perfmodel {

/// Classic roofline (Eq. 9): P* = min(Ppeak, b / B), Gflop/s for B in B/F
/// and b in GB/s.
[[nodiscard]] double roofline(const MachineSpec& m, double code_balance);

/// Memory-bandwidth bound alone (Eq. 10): P*_MEM = b / B.
[[nodiscard]] double roofline_mem(const MachineSpec& m, double code_balance);

/// LLC-bandwidth bound for decoupled kernels: P*_LLC = b_LLC / B_LLC.
/// `llc_balance` is the code balance with respect to LLC traffic; when the
/// working set streams through the LLC it equals the memory balance.
[[nodiscard]] double roofline_llc(const MachineSpec& m, double llc_balance);

/// Refined model (Eq. 11): P* = min(P*_MEM, P*_LLC), with P*_MEM computed
/// from the DRAM-side balance and P*_LLC from the cache-side balance.
[[nodiscard]] double roofline_refined(const MachineSpec& m,
                                      double mem_balance, double llc_balance);

/// Socket-scaling prediction for `cores` active cores: bandwidth is shared
/// (saturating), in-core capability scales linearly.
[[nodiscard]] double roofline_cores(const MachineSpec& m, int cores,
                                    double code_balance);

}  // namespace kpm::perfmodel
