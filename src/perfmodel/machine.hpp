// Machine descriptions — paper Table II plus derived cache-bandwidth
// parameters used by the refined roofline and the GPU throughput model.
#pragma once

#include <string>
#include <vector>

namespace kpm::perfmodel {

struct MachineSpec {
  std::string name;
  double clock_mhz = 0.0;
  int simd_bytes = 0;       ///< SIMD width (CPU) / warp granularity (GPU)
  int cores = 0;            ///< cores (CPU) or SMX count (GPU)
  double mem_bw_gbs = 0.0;  ///< attainable main memory bandwidth b, GB/s
  double llc_mib = 0.0;     ///< last level cache capacity
  double peak_gflops = 0.0; ///< double precision peak
  bool is_gpu = false;

  // Derived / calibrated parameters (not in Table II; documented estimates
  // used by the refined models).
  double llc_bw_gbs = 0.0;   ///< sustained LLC bandwidth (P*_LLC input)
  double tex_bw_gbs = 0.0;   ///< GPU read-only/texture cache bandwidth
  double l2_line_bytes = 128;///< transaction granularity of the GPU L2
  double pcie_bw_gbs = 6.0;  ///< host<->device transfer bandwidth
  double tdp_watts = 0.0;    ///< thermal design power (energy model input)

  /// Peak of a single core (CPU) for the socket-scaling model.
  [[nodiscard]] double core_peak_gflops() const {
    return cores > 0 ? peak_gflops / cores : peak_gflops;
  }
};

/// Intel Xeon E5-2660 v2 "IvyBridge", fixed 2.2 GHz (paper Table II).
[[nodiscard]] const MachineSpec& machine_ivb();
/// Intel Xeon E5-2670 "SandyBridge", turbo (Piz Daint host CPU).
[[nodiscard]] const MachineSpec& machine_snb();
/// NVIDIA Tesla K20m, ECC disabled (Emmy GPU).
[[nodiscard]] const MachineSpec& machine_k20m();
/// NVIDIA Tesla K20X, ECC enabled (Piz Daint GPU).
[[nodiscard]] const MachineSpec& machine_k20x();

/// Intel Xeon Phi 5110P (KNC) — not in Table II; the paper's outlook notes
/// the coprocessor "is already supported in our software" and defers its
/// model-driven analysis to future work.  Included for roofline projections.
[[nodiscard]] const MachineSpec& machine_knc();

/// All four Table II machines.
[[nodiscard]] std::vector<const MachineSpec*> table2_machines();

}  // namespace kpm::perfmodel
