#include "perfmodel/balance.hpp"

#include "util/check.hpp"

namespace kpm::perfmodel {
namespace {

constexpr double sd = bytes_per_element;   // 16
constexpr double si = bytes_per_index;     // 4
constexpr double fa = flops_complex_add;   // 2
constexpr double fm = flops_complex_mul;   // 6

}  // namespace

std::vector<FunctionCost> table1(const KpmWorkload& w) {
  require(w.n > 0 && w.nnz > 0 && w.num_random >= 1 && w.num_moments >= 2,
          "table1: invalid workload");
  const double r = w.num_random;
  const double half_m = w.inner_iterations();
  std::vector<FunctionCost> rows;
  rows.push_back({"spmv", r * half_m, w.nnz * (sd + si) + 2.0 * w.n * sd,
                  w.nnz * (fa + fm)});
  rows.push_back({"axpy", 2.0 * r * half_m, 3.0 * w.n * sd,
                  w.n * (fa + fm)});
  rows.push_back({"scal", r * half_m, 2.0 * w.n * sd, w.n * fm});
  rows.push_back({"nrm2", r * half_m, w.n * sd, w.n * (fa / 2.0 + fm / 2.0)});
  rows.push_back({"dot", r * half_m, 2.0 * w.n * sd, w.n * (fa + fm)});
  rows.push_back({"KPM", 1.0,
                  r * half_m * (w.nnz * (sd + si) + 13.0 * w.n * sd),
                  kpm_total_flops(w)});
  return rows;
}

double kpm_total_flops(const KpmWorkload& w) {
  return w.num_random * w.inner_iterations() *
         (w.nnz * (fa + fm) + w.n * (7.0 * fa / 2.0 + 9.0 * fm / 2.0));
}

double traffic_naive(const KpmWorkload& w) {
  return w.num_random * w.inner_iterations() *
         (w.nnz * (sd + si) + 13.0 * w.n * sd);
}

double traffic_aug_spmv(const KpmWorkload& w) {
  return w.num_random * w.inner_iterations() *
         (w.nnz * (sd + si) + 3.0 * w.n * sd);
}

double traffic_aug_spmmv(const KpmWorkload& w) {
  return w.inner_iterations() *
         (w.nnz * (sd + si) + 3.0 * w.num_random * w.n * sd);
}

double bmin(double nnzr, int num_random) {
  require(nnzr > 0 && num_random >= 1, "bmin: invalid arguments");
  const double bytes = nnzr / num_random * (sd + si) + 3.0 * sd;
  const double flops = nnzr * (fa + fm) + 7.0 * fa / 2.0 + 9.0 * fm / 2.0;
  return bytes / flops;
}

double bmin_limit(double nnzr) {
  const double flops = nnzr * (fa + fm) + 7.0 * fa / 2.0 + 9.0 * fm / 2.0;
  return 3.0 * sd / flops;
}

double omega(double measured_bytes, double model_bytes) {
  require(model_bytes > 0, "omega: model traffic must be positive");
  return measured_bytes / model_bytes;
}

FormatSpec crs_format() { return {sd, si, 1.0}; }

FormatSpec block_format(int block_dim, double fill, double value_bytes,
                        int index_bits) {
  require(block_dim >= 1 && fill > 0.0 && fill <= 1.0 &&
              (value_bytes == 8.0 || value_bytes == 16.0) &&
              (index_bits == 16 || index_bits == 32),
          "block_format: invalid arguments");
  // Per block: one column index plus the 2-byte occupancy word the kernel
  // streams to skip the explicit zero fill (BsrMatrix::block_mask).
  const double per_block = static_cast<double>(index_bits) / 8.0 + 2.0;
  return {value_bytes, per_block / (block_dim * block_dim), fill};
}

FormatSpec stencil_format(double stored_bytes, double nnz) {
  require(nnz > 0.0 && stored_bytes >= 0.0, "stencil_format: invalid arguments");
  return {stored_bytes / nnz, 0.0, 1.0};
}

double format_bytes_per_nnz(const FormatSpec& f) {
  require(f.fill > 0.0, "format_bytes_per_nnz: fill must be positive");
  return (f.value_bytes + f.index_bytes_per_value) / f.fill;
}

double bmin_format(const FormatSpec& f, double nnzr, int num_random) {
  require(nnzr > 0 && num_random >= 1, "bmin_format: invalid arguments");
  const double bytes =
      nnzr / num_random * format_bytes_per_nnz(f) + 3.0 * sd;
  const double flops = nnzr * (fa + fm) + 7.0 * fa / 2.0 + 9.0 * fm / 2.0;
  return bytes / flops;
}

double traffic_aug_spmmv_format(const KpmWorkload& w, const FormatSpec& f) {
  return w.inner_iterations() * (w.nnz * format_bytes_per_nnz(f) +
                                 3.0 * w.num_random * w.n * sd);
}

double general_spmv_balance(double data_bytes, double index_bytes,
                            double flops_per_entry) {
  require(data_bytes > 0 && index_bytes >= 0 && flops_per_entry > 0,
          "general_spmv_balance: invalid arguments");
  return (data_bytes + index_bytes) / flops_per_entry;
}

}  // namespace kpm::perfmodel
