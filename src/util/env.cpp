#include "util/env.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace kpm {

int max_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_threads(int n) noexcept {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

bool default_omp_affinity() noexcept {
  bool installed = false;
  // setenv(..., overwrite=0): a user-provided value always wins.
  if (std::getenv("OMP_PROC_BIND") == nullptr) {
    installed |= ::setenv("OMP_PROC_BIND", "close", 0) == 0;
  }
  if (std::getenv("OMP_PLACES") == nullptr) {
    installed |= ::setenv("OMP_PLACES", "cores", 0) == 0;
  }
  return installed;
}

namespace {

std::string format_scaled(double value, const char* unit,
                          const std::array<const char*, 5>& prefixes,
                          double base) {
  int idx = 0;
  while (std::abs(value) >= base && idx + 1 < static_cast<int>(prefixes.size())) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s%s", value, prefixes[idx], unit);
  return buf;
}

}  // namespace

std::string format_flops(double flops_per_second) {
  return format_scaled(flops_per_second, "flop/s", {"", "K", "M", "G", "T"},
                       1000.0);
}

std::string format_bytes(double bytes) {
  return format_scaled(bytes, "iB", {"", "K", "M", "G", "T"}, 1024.0);
}

}  // namespace kpm
