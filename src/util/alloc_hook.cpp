// Counting replacements of the global allocation functions (see header).
// Every allocating form funnels into counted_alloc(); the aligned forms use
// std::aligned_alloc so the matching sized/aligned deletes can free with
// std::free unconditionally.
#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::int64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

}  // namespace

namespace kpm::util {

std::int64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

bool allocation_hook_active() noexcept { return true; }

}  // namespace kpm::util

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
