// Small statistics helpers for benchmark reporting.
#pragma once

#include <span>
#include <vector>

namespace kpm {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

/// Computes min/max/mean/stddev/median of a sample (copies for the median).
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Relative deviation |a-b| / max(|a|,|b|, eps).
[[nodiscard]] double relative_error(double a, double b) noexcept;

/// Simple trapezoid-rule integral of y(x) over equally indexed samples.
[[nodiscard]] double trapezoid(std::span<const double> x,
                               std::span<const double> y);

}  // namespace kpm
