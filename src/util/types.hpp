// Fundamental scalar and index types used throughout kpm-pe.
//
// The paper (Sec. III-A) works in complex double precision: one data element
// is Sd = 16 bytes, kernel-local indices are Si = 4 bytes, while global
// quantities in large-scale runs use 8-byte indices.  We mirror that split:
// `local_index` indexes inside a kernel / one rank's partition, `global_index`
// addresses the whole (possibly distributed) problem.
#pragma once

#include <complex>
#include <cstdint>

namespace kpm {

using complex_t = std::complex<double>;
using real_t = double;

/// Index type used inside kernels (column indices of a local sparse matrix).
using local_index = std::int32_t;
/// Index type for global row counts and distributed offsets.
using global_index = std::int64_t;

/// Bytes per matrix/vector data element (complex double), Sd in the paper.
inline constexpr int bytes_per_element = 16;
/// Bytes per kernel-local index element, Si in the paper.
inline constexpr int bytes_per_index = 4;

/// Flops per complex addition (Fa in the paper).
inline constexpr int flops_complex_add = 2;
/// Flops per complex multiplication (Fm in the paper).
inline constexpr int flops_complex_mul = 6;

inline constexpr real_t pi = 3.14159265358979323846;

}  // namespace kpm
