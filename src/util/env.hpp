// Execution-environment helpers (thread counts, flop-rate formatting).
#pragma once

#include <string>

namespace kpm {

/// Number of OpenMP threads the kernels will use (1 if OpenMP is disabled).
[[nodiscard]] int max_threads() noexcept;

/// Sets the OpenMP thread count for subsequent parallel regions (no-op
/// without OpenMP).
void set_threads(int n) noexcept;

/// Formats a flop/s rate as e.g. "12.3 Gflop/s".
[[nodiscard]] std::string format_flops(double flops_per_second);

/// Formats a byte volume as e.g. "1.5 GiB".
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace kpm
