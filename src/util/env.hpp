// Execution-environment helpers (thread counts, flop-rate formatting).
#pragma once

#include <string>

namespace kpm {

/// Number of OpenMP threads the kernels will use (1 if OpenMP is disabled).
[[nodiscard]] int max_threads() noexcept;

/// Sets the OpenMP thread count for subsequent parallel regions (no-op
/// without OpenMP).
void set_threads(int n) noexcept;

/// Installs stable-measurement OpenMP affinity defaults — OMP_PROC_BIND=close
/// and OMP_PLACES=cores — unless the user already set either variable (user
/// values are never overridden; export your own to opt out).  Only effective
/// when called before the OpenMP runtime spins up its first parallel region,
/// so benches and the autotune probe call it at startup.  Returns true if at
/// least one default was installed.
bool default_omp_affinity() noexcept;

/// Formats a flop/s rate as e.g. "12.3 Gflop/s".
[[nodiscard]] std::string format_flops(double flops_per_second);

/// Formats a byte volume as e.g. "1.5 GiB".
[[nodiscard]] std::string format_bytes(double bytes);

}  // namespace kpm
