#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kpm {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double relative_error(double a, double b) noexcept {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

double trapezoid(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "trapezoid: size mismatch");
  if (x.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    acc += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return acc;
}

}  // namespace kpm
