// Cache-line / SIMD aligned storage.
//
// Block vectors must be aligned so that a row of R complex elements starts on
// a vector-register boundary; 64-byte alignment covers AVX-512 and the cache
// line size of every architecture in Table II.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace kpm {

inline constexpr std::size_t kpm_alignment = 64;

/// Minimal C++17 aligned allocator (Core Guidelines R.1: ownership via RAII).
template <class T, std::size_t Alignment = kpm_alignment>
struct aligned_allocator {
  using value_type = T;

  // Explicit rebind: the non-type Alignment parameter defeats libstdc++'s
  // automatic template-argument replacement.
  template <class U>
  struct rebind {
    using other = aligned_allocator<U, Alignment>;
  };

  aligned_allocator() noexcept = default;
  template <class U>
  aligned_allocator(const aligned_allocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const aligned_allocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector with 64-byte aligned storage, used for all matrix/vector payloads.
template <class T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

}  // namespace kpm
