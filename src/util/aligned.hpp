// Cache-line / SIMD aligned storage.
//
// Block vectors must be aligned so that a row of R complex elements starts on
// a vector-register boundary; 64-byte alignment covers AVX-512 and the cache
// line size of every architecture in Table II.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace kpm {

inline constexpr std::size_t kpm_alignment = 64;

/// Minimal C++17 aligned allocator (Core Guidelines R.1: ownership via RAII).
template <class T, std::size_t Alignment = kpm_alignment>
struct aligned_allocator {
  using value_type = T;

  // Explicit rebind: the non-type Alignment parameter defeats libstdc++'s
  // automatic template-argument replacement.
  template <class U>
  struct rebind {
    using other = aligned_allocator<U, Alignment>;
  };

  aligned_allocator() noexcept = default;
  template <class U>
  aligned_allocator(const aligned_allocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const aligned_allocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector with 64-byte aligned storage, used for all matrix/vector payloads.
template <class T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

/// Allocator adaptor that default-initializes (leaves trivial types
/// uninitialized) instead of value-initializing on container resize.  A
/// fresh buffer's pages are then NOT touched by the allocating thread, so a
/// subsequent parallel fill places each page on the NUMA node of the thread
/// that will stream it (first-touch policy; see blas::BlockVector).
template <class T, class A = aligned_allocator<T>>
class default_init_allocator : public A {
 public:
  using value_type = T;

  template <class U>
  struct rebind {
    using other = default_init_allocator<
        U, typename std::allocator_traits<A>::template rebind_alloc<U>>;
  };

  using A::A;

  template <class U>
  void construct(U* p) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;  // default-init: no write for trivial U
  }
  template <class U, class... Args>
  void construct(U* p, Args&&... args) {
    std::allocator_traits<A>::construct(static_cast<A&>(*this), p,
                                        std::forward<Args>(args)...);
  }
};

/// Aligned vector whose resize does not touch the new elements (trivial T).
template <class T>
using untouched_vector = std::vector<T, default_init_allocator<T>>;

}  // namespace kpm
