// Lightweight precondition checking (Core Guidelines I.6/E.12 style: throw on
// contract violation, no macros in the public interface).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace kpm {

/// Error thrown on violated preconditions / invariants inside kpm-pe.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws kpm::contract_error with file:line context unless `cond` holds.
/// The const char* overload defers all string building to the failure path,
/// so checks with literal messages are allocation-free when they pass —
/// required on hot paths with a zero-allocation steady-state contract
/// (persistent halo exchange, tree allreduce).
inline void require(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] {
    throw contract_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + what);
  }
}

inline void require(bool cond, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw contract_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": " + what);
  }
}

}  // namespace kpm
