// Deterministic static work partitioning shared by the kernels and the
// NUMA first-touch initialization.
//
// The fused block kernels split their row (or chunk) range into contiguous
// per-thread chunks *manually* instead of relying on `#pragma omp for
// schedule(static)`: the cache-blocking layer iterates each thread's range
// band by band and tile pass by tile pass, which worksharing loops cannot
// express, and the bitwise-reproducibility contract requires the row->thread
// assignment to be identical between the tiled and untiled paths on every
// OpenMP implementation.  First-touch page placement (blas::BlockVector)
// uses the same partition so each thread's band of v/w lands on its local
// NUMA node.
#pragma once

#include <algorithm>

namespace kpm {

/// Contiguous index interval [begin, end).
template <class Index>
struct IndexRange {
  Index begin;
  Index end;
};

/// The contiguous chunk of [begin, end) owned by thread `tid` out of
/// `nthreads`, matching the classic schedule(static) split: q = n/nthreads
/// items each, with the first n%nthreads threads taking one extra.
template <class Index>
[[nodiscard]] constexpr IndexRange<Index> static_chunk(Index begin, Index end,
                                                       int tid,
                                                       int nthreads) noexcept {
  const Index n = end > begin ? end - begin : Index{0};
  const Index nt = static_cast<Index>(nthreads > 0 ? nthreads : 1);
  const Index t = static_cast<Index>(tid);
  const Index q = n / nt;
  const Index r = n % nt;
  const Index lo = begin + q * t + std::min(t, r);
  return {lo, lo + q + (t < r ? Index{1} : Index{0})};
}

}  // namespace kpm
