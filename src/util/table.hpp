// Console table / CSV writer used by the benchmark harness to print the
// rows and series of the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace kpm {

/// A cell is a string, an integer, or a double (formatted with %.4g-ish
/// precision unless a column format overrides it).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names);
  Table& row(std::vector<Cell> cells);
  /// Digits of precision for double cells (default 4).
  Table& precision(int digits);

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;
  /// Renders comma-separated values (header + rows).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace kpm
