#include "util/random.hpp"

#include <cmath>

#include "util/check.hpp"

namespace kpm {
namespace {

complex_t draw(std::mt19937_64& eng, RandomVectorKind kind) {
  switch (kind) {
    case RandomVectorKind::phase: {
      std::uniform_real_distribution<double> dist(0.0, 2.0 * pi);
      const double phi = dist(eng);
      return {std::cos(phi), std::sin(phi)};
    }
    case RandomVectorKind::rademacher: {
      std::bernoulli_distribution dist(0.5);
      return {dist(eng) ? 1.0 : -1.0, 0.0};
    }
    case RandomVectorKind::gaussian: {
      std::normal_distribution<double> dist(0.0, 1.0);
      return {dist(eng), dist(eng)};
    }
  }
  return {};
}

}  // namespace

void RandomVectorSource::fill(std::span<complex_t> v) {
  require(!v.empty(), "random vector must be non-empty");
  double norm2 = 0.0;
  for (auto& x : v) {
    x = draw(engine_, kind_);
    norm2 += std::norm(x);
  }
  const double scale = 1.0 / std::sqrt(norm2);
  for (auto& x : v) x *= scale;
}

void RandomVectorSource::fill_column(std::span<complex_t> block, int width,
                                     int col) {
  require(width > 0 && col >= 0 && col < width, "invalid block column");
  require(block.size() % static_cast<std::size_t>(width) == 0,
          "block size must be a multiple of width");
  const std::size_t rows = block.size() / static_cast<std::size_t>(width);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    auto& x = block[i * width + col];
    x = draw(engine_, kind_);
    norm2 += std::norm(x);
  }
  const double scale = 1.0 / std::sqrt(norm2);
  for (std::size_t i = 0; i < rows; ++i) block[i * width + col] *= scale;
}

}  // namespace kpm
