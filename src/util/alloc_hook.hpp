// Global-allocation counting hook for zero-allocation assertions.
//
// Linking the kpm_alloc_hook static library into a target replaces the
// global operator new/delete with counting forwarders; allocation_count()
// then exposes a process-wide monotone counter.  Tests bracket a code region
// with two reads and assert the difference — the steady-state halo exchange,
// for example, must perform zero heap allocations per Chebyshev step
// (DESIGN.md §5d).
//
// Deliberately NOT linked into the default targets: interposing operator new
// is a global decision a library must not make for its users.  Note that
// util/aligned.hpp allocates via std::aligned_alloc, which does not route
// through operator new — the counter tracks ordinary new/delete traffic
// (std::vector, std::string, node containers, ...), which is exactly what
// the transport hot paths are required to avoid.
#pragma once

#include <cstdint>

namespace kpm::util {

/// Number of successful global operator new calls since process start.
/// Defined by kpm_alloc_hook — link it or get an (intentional) link error.
[[nodiscard]] std::int64_t allocation_count() noexcept;

/// Always true in targets that link kpm_alloc_hook; exists so a test can
/// document at runtime that its zero-allocation assertion is live.
[[nodiscard]] bool allocation_hook_active() noexcept;

}  // namespace kpm::util
