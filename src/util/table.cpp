#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace kpm {
namespace {

std::string render(const Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision) << std::get<double>(c);
  return os.str();
}

}  // namespace

Table& Table::columns(std::vector<std::string> names) {
  header_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<Cell> cells) {
  require(header_.empty() || cells.size() == header_.size(),
          "table row width must match the header");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::precision(int digits) {
  precision_ = digits;
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<std::string> rendered;
    rendered.reserve(r.size());
    for (const auto& c : r) rendered.push_back(render(c, precision_));
    cells.push_back(std::move(rendered));
  }
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  for (const auto& r : cells) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      if (j >= width.size()) width.resize(j + 1, 0);
      width[j] = std::max(width[j], r[j].size());
    }
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      os << std::left << std::setw(static_cast<int>(width[j]) + 2) << r[j];
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : cells) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      if (j) os << ',';
      os << r[j];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) {
    std::vector<std::string> rendered;
    rendered.reserve(r.size());
    for (const auto& c : r) rendered.push_back(render(c, precision_));
    emit(rendered);
  }
}

}  // namespace kpm
