// Wall-clock timing utilities for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace kpm {

/// Monotonic wall-clock timer with start/stop accumulation.
class Timer {
 public:
  void start() noexcept;
  /// Stops the current interval and adds it to the accumulated total.
  void stop() noexcept;
  void reset() noexcept;

  /// Accumulated time over all start/stop intervals, in seconds.
  [[nodiscard]] double seconds() const noexcept;
  [[nodiscard]] std::int64_t intervals() const noexcept { return intervals_; }

  /// Seconds since the epoch of the steady clock; cheap convenience.
  [[nodiscard]] static double now() noexcept;

  /// CPU seconds consumed by the *calling thread* (CLOCK_THREAD_CPUTIME_ID;
  /// falls back to the steady clock where unavailable).  Unlike wall clock
  /// it excludes time spent descheduled or blocked, so a rank's sweep rate
  /// measured with it is immune to oversubscription and to waiting on a
  /// peer — what the load balancer needs on a shared host.
  [[nodiscard]] static double thread_cpu_now() noexcept;

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point begin_{};
  clock::duration accumulated_{};
  std::int64_t intervals_ = 0;
  bool running_ = false;
};

/// Runs `fn` repeatedly until at least `min_seconds` elapsed (at least
/// `min_reps` repetitions) and returns the best (minimum) time per call.
template <class Fn>
double time_best(Fn&& fn, double min_seconds = 0.05, int min_reps = 3) {
  Timer t;
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (total < min_seconds || reps < min_reps) {
    t.reset();
    t.start();
    fn();
    t.stop();
    const double s = t.seconds();
    best = s < best ? s : best;
    total += s;
    ++reps;
  }
  return best;
}

}  // namespace kpm
