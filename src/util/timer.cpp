#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#endif

namespace kpm {

void Timer::start() noexcept {
  begin_ = clock::now();
  running_ = true;
}

void Timer::stop() noexcept {
  if (!running_) return;
  accumulated_ += clock::now() - begin_;
  running_ = false;
  ++intervals_;
}

void Timer::reset() noexcept {
  accumulated_ = {};
  intervals_ = 0;
  running_ = false;
}

double Timer::seconds() const noexcept {
  auto total = accumulated_;
  if (running_) total += clock::now() - begin_;
  return std::chrono::duration<double>(total).count();
}

double Timer::now() noexcept {
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double Timer::thread_cpu_now() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return now();
}

}  // namespace kpm
