// Random starting vectors for the stochastic trace estimator.
//
// KPM approximates tr[A] ~ (1/R) sum_r <v_r|A|v_r> over R independent random
// vectors (paper Sec. II).  Standard choices are complex random-phase vectors
// (|v_i| = 1/sqrt(N), uniformly random phase) and Rademacher (+-1) vectors;
// random-phase gives the lowest variance for complex Hermitian problems.
#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "util/types.hpp"

namespace kpm {

enum class RandomVectorKind {
  phase,       ///< e^{i phi}/sqrt(N), phi uniform in [0, 2pi)
  rademacher,  ///< +-1/sqrt(N) real entries
  gaussian,    ///< complex normal, normalized
};

/// Deterministic, seedable generator of stochastic-trace starting vectors.
class RandomVectorSource {
 public:
  explicit RandomVectorSource(std::uint64_t seed,
                              RandomVectorKind kind = RandomVectorKind::phase)
      : engine_(seed), kind_(kind) {}

  /// Fills `v` with a fresh random vector, normalized to <v|v> = 1.
  void fill(std::span<complex_t> v);

  /// Fills column `col` of a row-major block vector of width `width`.
  void fill_column(std::span<complex_t> block, int width, int col);

  [[nodiscard]] RandomVectorKind kind() const noexcept { return kind_; }

 private:
  std::mt19937_64 engine_;
  RandomVectorKind kind_;
};

}  // namespace kpm
