// Block vectors (multiple right-hand sides).
//
// The paper's optimization stage 2 (Fig. 5) interprets the R random vectors
// of the stochastic trace as a single block vector of width R.  For SIMD/SIMT
// efficiency the block must be stored *row-major* ("interleaved", Sec. IV-A):
// element (i, r) lives at i*R + r, so the R values of one matrix row are
// contiguous and a vectorized kernel streams them with unit stride.
// A column-major layout is provided as well for the layout ablation bench.
#pragma once

#include <span>

#include "util/aligned.hpp"
#include "util/types.hpp"

namespace kpm::blas {

enum class Layout { row_major, col_major };

/// Page-placement policy of a fresh BlockVector's zero fill.
///
///  - serial:   one thread touches every page (historic behavior; fine on a
///    single NUMA node).
///  - parallel: the zero fill runs in an OpenMP parallel region using the
///    kernels' static row split (util/schedule.hpp), so under a first-touch
///    NUMA policy each thread's row band lands in pages local to the core
///    that will stream it in aug_spmmv.  Requires the same OMP_NUM_THREADS /
///    affinity as the later kernel calls to be effective.
enum class FirstTouch { serial, parallel };

/// Dense rows x width complex block vector with 64-byte aligned storage.
class BlockVector {
 public:
  BlockVector() = default;
  BlockVector(global_index rows, int width, Layout layout = Layout::row_major,
              FirstTouch touch = FirstTouch::serial);

  [[nodiscard]] global_index rows() const noexcept { return rows_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size() / 2; }

  [[nodiscard]] complex_t& operator()(global_index i, int r) noexcept {
    return data()[index(i, r)];
  }
  [[nodiscard]] const complex_t& operator()(global_index i, int r) const noexcept {
    return data()[index(i, r)];
  }

  [[nodiscard]] std::span<complex_t> span() noexcept { return {data(), size()}; }
  [[nodiscard]] std::span<const complex_t> span() const noexcept {
    return {data(), size()};
  }
  // Storage is interleaved (re, im) doubles; [complex.numbers.general]/4
  // guarantees the complex view, and keeping the doubles primary lets a
  // fresh buffer stay untouched until the (possibly parallel, first-touch)
  // zero fill.
  [[nodiscard]] complex_t* data() noexcept {
    return reinterpret_cast<complex_t*>(data_.data());
  }
  [[nodiscard]] const complex_t* data() const noexcept {
    return reinterpret_cast<const complex_t*>(data_.data());
  }

  /// Interleaved (re, im) scalar view of the storage for split-complex
  /// kernels; element (i, r) occupies real_data()[2k] (real) and
  /// real_data()[2k + 1] (imag) with k the complex-element index.
  [[nodiscard]] double* real_data() noexcept { return data_.data(); }
  [[nodiscard]] const double* real_data() const noexcept {
    return data_.data();
  }
  /// Doubles between consecutive rows of the interleaved view (row-major) /
  /// consecutive column elements (col-major): the split-loop row stride.
  [[nodiscard]] std::size_t real_stride() const noexcept {
    return 2 * static_cast<std::size_t>(layout_ == Layout::row_major ? width_
                                                                     : 1);
  }

  /// Contiguous row i (row-major layout only).
  [[nodiscard]] std::span<complex_t> row(global_index i);
  [[nodiscard]] std::span<const complex_t> row(global_index i) const;

  /// Copies column r into `out` (any layout).
  void extract_column(int r, std::span<complex_t> out) const;
  /// Overwrites column r from `in` (any layout).
  void set_column(int r, std::span<const complex_t> in);

  void fill(complex_t value);

  /// Returns a copy converted to the other storage layout.
  [[nodiscard]] BlockVector transposed_layout() const;

 private:
  [[nodiscard]] std::size_t index(global_index i, int r) const noexcept {
    return layout_ == Layout::row_major
               ? static_cast<std::size_t>(i) * width_ + r
               : static_cast<std::size_t>(r) * rows_ + i;
  }

  global_index rows_ = 0;
  int width_ = 0;
  Layout layout_ = Layout::row_major;
  untouched_vector<double> data_;  // 2 * rows * width interleaved doubles
};

}  // namespace kpm::blas
