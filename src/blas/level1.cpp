#include "blas/level1.hpp"

#include <cmath>
#include <cstdint>

#include "util/check.hpp"

namespace kpm::blas {

void axpy(complex_t a, std::span<const complex_t> x, std::span<complex_t> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] += a * xp[i];
}

void scal(complex_t a, std::span<complex_t> x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  complex_t* __restrict__ xp = x.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) xp[i] *= a;
}

void copy(std::span<const complex_t> x, std::span<complex_t> y) {
  require(x.size() == y.size(), "copy: size mismatch");
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] = xp[i];
}

complex_t dot(std::span<const complex_t> x, std::span<const complex_t> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  const complex_t* __restrict__ yp = y.data();
  double re = 0.0, im = 0.0;
#pragma omp parallel for simd schedule(static) reduction(+ : re, im)
  for (std::int64_t i = 0; i < n; ++i) {
    const complex_t p = std::conj(xp[i]) * yp[i];
    re += p.real();
    im += p.imag();
  }
  return {re, im};
}

double dot_self(std::span<const complex_t> x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  double acc = 0.0;
#pragma omp parallel for simd schedule(static) reduction(+ : acc)
  for (std::int64_t i = 0; i < n; ++i) acc += std::norm(xp[i]);
  return acc;
}

double nrm2(std::span<const complex_t> x) { return std::sqrt(dot_self(x)); }

void set_zero(std::span<complex_t> x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  complex_t* __restrict__ xp = x.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) xp[i] = complex_t{};
}

}  // namespace kpm::blas
