#include "blas/block_vector.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/check.hpp"
#include "util/schedule.hpp"

namespace kpm::blas {

BlockVector::BlockVector(global_index rows, int width, Layout layout,
                         FirstTouch touch)
    : rows_(rows), width_(width), layout_(layout) {
  require(rows >= 0 && width > 0, "BlockVector: invalid shape");
  // resize() leaves the doubles uninitialized (untouched_vector), so the
  // zero fill below is the first touch of every page.
  data_.resize(2 * static_cast<std::size_t>(rows) * width);
  if (touch == FirstTouch::parallel && !data_.empty()) {
    // Same static row split as the fused kernels: each page ends up local to
    // the thread that will stream that row band.  (For col_major the split
    // runs over the flat storage instead; the kernels only band row-major.)
    const std::size_t per_row =
        layout == Layout::row_major ? 2 * static_cast<std::size_t>(width) : 2;
    const global_index items =
        layout == Layout::row_major ? rows_
                                    : rows_ * static_cast<global_index>(width);
#ifdef _OPENMP
#pragma omp parallel
    {
      const auto mine = static_chunk<global_index>(
          0, items, omp_get_thread_num(), omp_get_num_threads());
      std::fill(data_.begin() + static_cast<std::size_t>(mine.begin) * per_row,
                data_.begin() + static_cast<std::size_t>(mine.end) * per_row,
                0.0);
    }
#else
    std::fill(data_.begin(), data_.end(), 0.0);
#endif
  } else {
    std::fill(data_.begin(), data_.end(), 0.0);
  }
}

std::span<complex_t> BlockVector::row(global_index i) {
  require(layout_ == Layout::row_major, "row(): row-major layout required");
  return {data() + static_cast<std::size_t>(i) * width_,
          static_cast<std::size_t>(width_)};
}

std::span<const complex_t> BlockVector::row(global_index i) const {
  require(layout_ == Layout::row_major, "row(): row-major layout required");
  return {data() + static_cast<std::size_t>(i) * width_,
          static_cast<std::size_t>(width_)};
}

void BlockVector::extract_column(int r, std::span<complex_t> out) const {
  require(r >= 0 && r < width_, "extract_column: column out of range");
  require(out.size() == static_cast<std::size_t>(rows_),
          "extract_column: output size mismatch");
  for (global_index i = 0; i < rows_; ++i) out[i] = (*this)(i, r);
}

void BlockVector::set_column(int r, std::span<const complex_t> in) {
  require(r >= 0 && r < width_, "set_column: column out of range");
  require(in.size() == static_cast<std::size_t>(rows_),
          "set_column: input size mismatch");
  for (global_index i = 0; i < rows_; ++i) (*this)(i, r) = in[i];
}

void BlockVector::fill(complex_t value) {
  complex_t* p = data();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) p[i] = value;
}

BlockVector BlockVector::transposed_layout() const {
  const Layout other =
      layout_ == Layout::row_major ? Layout::col_major : Layout::row_major;
  BlockVector out(rows_, width_, other);
  for (global_index i = 0; i < rows_; ++i) {
    for (int r = 0; r < width_; ++r) out(i, r) = (*this)(i, r);
  }
  return out;
}

}  // namespace kpm::blas
