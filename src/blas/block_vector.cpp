#include "blas/block_vector.hpp"

#include "util/check.hpp"

namespace kpm::blas {

BlockVector::BlockVector(global_index rows, int width, Layout layout)
    : rows_(rows), width_(width), layout_(layout) {
  require(rows >= 0 && width > 0, "BlockVector: invalid shape");
  data_.assign(static_cast<std::size_t>(rows) * width, complex_t{});
}

std::span<complex_t> BlockVector::row(global_index i) {
  require(layout_ == Layout::row_major, "row(): row-major layout required");
  return {data_.data() + static_cast<std::size_t>(i) * width_,
          static_cast<std::size_t>(width_)};
}

std::span<const complex_t> BlockVector::row(global_index i) const {
  require(layout_ == Layout::row_major, "row(): row-major layout required");
  return {data_.data() + static_cast<std::size_t>(i) * width_,
          static_cast<std::size_t>(width_)};
}

void BlockVector::extract_column(int r, std::span<complex_t> out) const {
  require(r >= 0 && r < width_, "extract_column: column out of range");
  require(out.size() == static_cast<std::size_t>(rows_),
          "extract_column: output size mismatch");
  for (global_index i = 0; i < rows_; ++i) out[i] = (*this)(i, r);
}

void BlockVector::set_column(int r, std::span<const complex_t> in) {
  require(r >= 0 && r < width_, "set_column: column out of range");
  require(in.size() == static_cast<std::size_t>(rows_),
          "set_column: input size mismatch");
  for (global_index i = 0; i < rows_; ++i) (*this)(i, r) = in[i];
}

void BlockVector::fill(complex_t value) {
  for (auto& x : data_) x = value;
}

BlockVector BlockVector::transposed_layout() const {
  const Layout other =
      layout_ == Layout::row_major ? Layout::col_major : Layout::row_major;
  BlockVector out(rows_, width_, other);
  for (global_index i = 0; i < rows_; ++i) {
    for (int r = 0; r < width_; ++r) out(i, r) = (*this)(i, r);
  }
  return out;
}

}  // namespace kpm::blas
