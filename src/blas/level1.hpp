// Complex BLAS level-1 kernels.
//
// These are exactly the primitives the *naive* KPM-DOS implementation (paper
// Fig. 3) is composed of: axpy, scal, nrm2, dot.  They are implemented here
// rather than taken from a vendor BLAS so that (a) the repository is
// self-contained and (b) the traced variants in src/memsim can replay the
// same access patterns.
#pragma once

#include <span>

#include "util/types.hpp"

namespace kpm::blas {

/// y <- a*x + y
void axpy(complex_t a, std::span<const complex_t> x, std::span<complex_t> y);

/// x <- a*x
void scal(complex_t a, std::span<complex_t> x);

/// y <- x
void copy(std::span<const complex_t> x, std::span<complex_t> y);

/// <x|y> = sum_i conj(x_i) * y_i
[[nodiscard]] complex_t dot(std::span<const complex_t> x,
                            std::span<const complex_t> y);

/// ||x||_2
[[nodiscard]] double nrm2(std::span<const complex_t> x);

/// <x|x> as a real number (nrm2 squared, but without the sqrt round trip).
[[nodiscard]] double dot_self(std::span<const complex_t> x);

/// x <- 0
void set_zero(std::span<complex_t> x);

}  // namespace kpm::blas
