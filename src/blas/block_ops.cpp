#include "blas/block_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace kpm::blas {
namespace {

void require_same_shape(const BlockVector& x, const BlockVector& y) {
  require(x.rows() == y.rows() && x.width() == y.width() &&
              x.layout() == y.layout(),
          "block vectors must have identical shape and layout");
}

}  // namespace

void column_dots(const BlockVector& x, const BlockVector& y,
                 std::span<complex_t> out) {
  require_same_shape(x, y);
  require(out.size() == static_cast<std::size_t>(x.width()),
          "column_dots: output width mismatch");
  const int width = x.width();
  const global_index rows = x.rows();
  std::fill(out.begin(), out.end(), complex_t{});
  if (x.layout() == Layout::row_major) {
    const complex_t* __restrict__ xp = x.data();
    const complex_t* __restrict__ yp = y.data();
#pragma omp parallel
    {
      std::vector<complex_t> local(static_cast<std::size_t>(width));
#pragma omp for schedule(static) nowait
      for (global_index i = 0; i < rows; ++i) {
        const std::size_t base = static_cast<std::size_t>(i) * width;
        for (int r = 0; r < width; ++r) {
          local[r] += std::conj(xp[base + r]) * yp[base + r];
        }
      }
#pragma omp critical(kpm_column_dots)
      for (int r = 0; r < width; ++r) out[r] += local[r];
    }
  } else {
    for (int r = 0; r < width; ++r) {
      complex_t acc{};
      for (global_index i = 0; i < rows; ++i) acc += std::conj(x(i, r)) * y(i, r);
      out[r] = acc;
    }
  }
}

void column_norms2(const BlockVector& x, std::span<double> out) {
  require(out.size() == static_cast<std::size_t>(x.width()),
          "column_norms2: output width mismatch");
  std::vector<complex_t> dots(static_cast<std::size_t>(x.width()));
  column_dots(x, x, dots);
  for (std::size_t r = 0; r < dots.size(); ++r) out[r] = dots[r].real();
}

void block_axpy(complex_t a, const BlockVector& x, BlockVector& y) {
  require_same_shape(x, y);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] += a * xp[i];
}

void block_scal(complex_t a, BlockVector& x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  complex_t* __restrict__ xp = x.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) xp[i] *= a;
}

void block_copy(const BlockVector& x, BlockVector& y) {
  require_same_shape(x, y);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] = xp[i];
}

double max_abs_diff(const BlockVector& x, const BlockVector& y) {
  require(x.rows() == y.rows() && x.width() == y.width(),
          "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (global_index i = 0; i < x.rows(); ++i) {
    for (int r = 0; r < x.width(); ++r) {
      worst = std::max(worst, std::abs(x(i, r) - y(i, r)));
    }
  }
  return worst;
}

}  // namespace kpm::blas
