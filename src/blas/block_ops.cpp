#include "blas/block_ops.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "util/aligned.hpp"
#include "util/check.hpp"

namespace kpm::blas {
namespace {

#ifndef _OPENMP
inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
#endif

void require_same_shape(const BlockVector& x, const BlockVector& y) {
  require(x.rows() == y.rows() && x.width() == y.width() &&
              x.layout() == y.layout(),
          "block vectors must have identical shape and layout");
}

}  // namespace

void column_dots(const BlockVector& x, const BlockVector& y,
                 std::span<complex_t> out) {
  require_same_shape(x, y);
  require(out.size() == static_cast<std::size_t>(x.width()),
          "column_dots: output width mismatch");
  const int width = x.width();
  const global_index rows = x.rows();
  std::fill(out.begin(), out.end(), complex_t{});
  if (x.layout() == Layout::row_major) {
    // Split-complex inner loop over the interleaved (re, im) storage; the
    // per-thread partials land in cache-line-padded slots that are reduced
    // in ascending thread order, so the result is bitwise reproducible at a
    // fixed thread count (no `omp critical`, no merge-order races).
    const double* __restrict__ xd = x.real_data();
    const double* __restrict__ yd = y.real_data();
    const std::size_t stride = x.real_stride();
    const std::size_t slot = (stride + 7) / 8 * 8;
    aligned_vector<double> partials(
        slot * static_cast<std::size_t>(omp_get_max_threads()), 0.0);
#pragma omp parallel
    {
      std::vector<double> local(stride, 0.0);
      double* __restrict__ lre = local.data();
      double* __restrict__ lim = lre + width;
#pragma omp for schedule(static) nowait
      for (global_index i = 0; i < rows; ++i) {
        const double* __restrict__ xi =
            xd + static_cast<std::size_t>(i) * stride;
        const double* __restrict__ yi =
            yd + static_cast<std::size_t>(i) * stride;
#pragma omp simd
        for (int r = 0; r < width; ++r) {
          const double xre = xi[2 * r], xim = xi[2 * r + 1];
          const double yre = yi[2 * r], yim = yi[2 * r + 1];
          lre[r] += xre * yre + xim * yim;  // Re(conj(x) * y)
          lim[r] += xre * yim - xim * yre;  // Im(conj(x) * y)
        }
      }
      double* mine = partials.data() + slot * omp_get_thread_num();
      for (std::size_t d = 0; d < stride; ++d) mine[d] = local[d];
#pragma omp barrier
#pragma omp master
      for (int t = 0; t < omp_get_num_threads(); ++t) {
        const double* tp = partials.data() + slot * t;
        for (int r = 0; r < width; ++r) {
          out[r] += complex_t{tp[r], tp[width + r]};
        }
      }
    }
  } else {
    for (int r = 0; r < width; ++r) {
      complex_t acc{};
      for (global_index i = 0; i < rows; ++i) acc += std::conj(x(i, r)) * y(i, r);
      out[r] = acc;
    }
  }
}

void column_norms2(const BlockVector& x, std::span<double> out) {
  require(out.size() == static_cast<std::size_t>(x.width()),
          "column_norms2: output width mismatch");
  std::vector<complex_t> dots(static_cast<std::size_t>(x.width()));
  column_dots(x, x, dots);
  for (std::size_t r = 0; r < dots.size(); ++r) out[r] = dots[r].real();
}

void block_axpy(complex_t a, const BlockVector& x, BlockVector& y) {
  require_same_shape(x, y);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] += a * xp[i];
}

void block_scal(complex_t a, BlockVector& x) {
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  complex_t* __restrict__ xp = x.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) xp[i] *= a;
}

void block_copy(const BlockVector& x, BlockVector& y) {
  require_same_shape(x, y);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  const complex_t* __restrict__ xp = x.data();
  complex_t* __restrict__ yp = y.data();
#pragma omp parallel for simd schedule(static)
  for (std::int64_t i = 0; i < n; ++i) yp[i] = xp[i];
}

double max_abs_diff(const BlockVector& x, const BlockVector& y) {
  require(x.rows() == y.rows() && x.width() == y.width(),
          "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (global_index i = 0; i < x.rows(); ++i) {
    for (int r = 0; r < x.width(); ++r) {
      worst = std::max(worst, std::abs(x(i, r) - y(i, r)));
    }
  }
  return worst;
}

}  // namespace kpm::blas
