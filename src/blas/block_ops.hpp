// Blocked (column-wise) level-1 operations on block vectors.
//
// These are the building blocks for the blocked KPM (Fig. 5): every eta
// moment becomes a vector of R column-wise dot products of two block vectors.
#pragma once

#include <span>
#include <vector>

#include "blas/block_vector.hpp"
#include "util/types.hpp"

namespace kpm::blas {

/// out[r] = <X_r|Y_r> for every column r; `out` must have width entries.
void column_dots(const BlockVector& x, const BlockVector& y,
                 std::span<complex_t> out);

/// out[r] = <X_r|X_r> (real) for every column r.
void column_norms2(const BlockVector& x, std::span<double> out);

/// Y <- a*X + Y column-uniform axpy on the whole block.
void block_axpy(complex_t a, const BlockVector& x, BlockVector& y);

/// X <- a*X.
void block_scal(complex_t a, BlockVector& x);

/// Y <- X (must have identical shape and layout).
void block_copy(const BlockVector& x, BlockVector& y);

/// Maximum |X(i,r) - Y(i,r)| over the whole block.
[[nodiscard]] double max_abs_diff(const BlockVector& x, const BlockVector& y);

}  // namespace kpm::blas
